//! Application components: the partitionable units of an offloadable
//! application.

use core::fmt;

use ntc_simcore::units::{Cycles, DataSize};
use serde::{Deserialize, Serialize};

/// Identifier of a component within its [`crate::TaskGraph`].
///
/// Ids are dense indices assigned by the builder in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The dense index of this component.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a dense index.
    ///
    /// Only meaningful for indices previously handed out by a builder for
    /// the same graph; useful when iterating by position.
    pub fn from_index(index: usize) -> Self {
        ComponentId(u32::try_from(index).expect("component index out of range"))
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A linear model of a quantity as a function of the job input size:
/// `fixed + per_input_byte * input_bytes`.
///
/// Used for both compute demand (cycles) and edge payloads (bytes), since
/// both typically scale with the size of the data being processed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Input-independent part.
    pub fixed: f64,
    /// Slope per byte of job input.
    pub per_input_byte: f64,
}

impl LinearModel {
    /// A model that is always zero.
    pub const ZERO: LinearModel = LinearModel { fixed: 0.0, per_input_byte: 0.0 };

    /// Creates a constant model.
    pub fn constant(fixed: f64) -> Self {
        LinearModel { fixed, per_input_byte: 0.0 }
    }

    /// Creates a model with both a fixed part and an input-proportional part.
    pub fn scaling(fixed: f64, per_input_byte: f64) -> Self {
        LinearModel { fixed, per_input_byte }
    }

    /// Evaluates the model for a job of the given input size, clamped at
    /// zero.
    pub fn eval(&self, input: DataSize) -> f64 {
        (self.fixed + self.per_input_byte * input.as_bytes() as f64).max(0.0)
    }

    /// Evaluates the model and rounds to a cycle count.
    pub fn eval_cycles(&self, input: DataSize) -> Cycles {
        Cycles::new(self.eval(input).round() as u64)
    }

    /// Evaluates the model and rounds to a data size.
    pub fn eval_bytes(&self, input: DataSize) -> DataSize {
        DataSize::from_bytes(self.eval(input).round() as u64)
    }
}

/// Where a component is allowed to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Pinning {
    /// May run on the device or be offloaded — the default.
    #[default]
    Offloadable,
    /// Must run on the user equipment (UI rendering, sensor access,
    /// local-only data).
    Device,
}

/// One component (function/module) of an application.
///
/// Construct via [`Component::new`] and the `with_*` builder methods:
///
/// ```
/// use ntc_taskgraph::component::{Component, LinearModel, Pinning};
/// use ntc_simcore::units::DataSize;
///
/// let decode = Component::new("decode")
///     .with_demand(LinearModel::scaling(5e6, 120.0))
///     .with_memory(DataSize::from_mib(256))
///     .with_pinning(Pinning::Offloadable);
/// assert_eq!(decode.name(), "decode");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    name: String,
    demand: LinearModel,
    memory: DataSize,
    artifact_size: DataSize,
    pinning: Pinning,
    batchable: bool,
}

impl Component {
    /// Creates a component with zero demand, 64 MiB memory footprint, a
    /// 1 MiB deployment artifact, and offloadable pinning.
    pub fn new(name: impl Into<String>) -> Self {
        Component {
            name: name.into(),
            demand: LinearModel::ZERO,
            memory: DataSize::from_mib(64),
            artifact_size: DataSize::from_mib(1),
            pinning: Pinning::Offloadable,
            batchable: true,
        }
    }

    /// Sets the compute-demand model (cycles as a function of job input).
    pub fn with_demand(mut self, demand: LinearModel) -> Self {
        self.demand = demand;
        self
    }

    /// Sets the peak memory footprint.
    pub fn with_memory(mut self, memory: DataSize) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the size of the deployable artifact (container layer / zip).
    pub fn with_artifact_size(mut self, size: DataSize) -> Self {
        self.artifact_size = size;
        self
    }

    /// Sets the placement constraint.
    pub fn with_pinning(mut self, pinning: Pinning) -> Self {
        self.pinning = pinning;
        self
    }

    /// Sets whether coalesced jobs may share this component's *fixed*
    /// demand (`true`, the default — model loading, template compilation)
    /// or whether the fixed part is irreducible per job (`false` — e.g.
    /// one independent simulation per job).
    pub fn with_batchable(mut self, batchable: bool) -> Self {
        self.batchable = batchable;
        self
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compute-demand model.
    pub fn demand(&self) -> LinearModel {
        self.demand
    }

    /// The expected cycles for a job with the given input size.
    pub fn demand_cycles(&self, input: DataSize) -> Cycles {
        self.demand.eval_cycles(input)
    }

    /// The peak memory footprint.
    pub fn memory(&self) -> DataSize {
        self.memory
    }

    /// The deployment-artifact size.
    pub fn artifact_size(&self) -> DataSize {
        self.artifact_size
    }

    /// The placement constraint.
    pub fn pinning(&self) -> Pinning {
        self.pinning
    }

    /// Whether the component may be offloaded off the device.
    pub fn is_offloadable(&self) -> bool {
        self.pinning == Pinning::Offloadable
    }

    /// Whether coalesced jobs share the fixed demand (see
    /// [`Component::with_batchable`]).
    pub fn is_batchable(&self) -> bool {
        self.batchable
    }

    /// The expected cycles for a coalesced batch of `members` jobs with
    /// `sum_input` total input: batchable components amortise the fixed
    /// part; non-batchable ones pay it per member.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn batch_demand_cycles(&self, members: u64, sum_input: DataSize) -> Cycles {
        assert!(members > 0, "a batch has at least one member");
        if self.batchable {
            self.demand.eval_cycles(sum_input)
        } else {
            let per_byte = self.demand.per_input_byte * sum_input.as_bytes() as f64;
            Cycles::new(
                (self.demand.fixed.max(0.0) * members as f64 + per_byte.max(0.0)).round() as u64
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_evaluates() {
        let m = LinearModel::scaling(100.0, 2.0);
        assert_eq!(m.eval(DataSize::from_bytes(10)), 120.0);
        assert_eq!(m.eval_cycles(DataSize::ZERO), Cycles::new(100));
        assert_eq!(LinearModel::ZERO.eval(DataSize::from_gib(1)), 0.0);
    }

    #[test]
    fn linear_model_clamps_negative() {
        let m = LinearModel::scaling(-100.0, 0.0);
        assert_eq!(m.eval(DataSize::ZERO), 0.0);
    }

    #[test]
    fn component_builder_sets_fields() {
        let c = Component::new("ui")
            .with_demand(LinearModel::constant(1e6))
            .with_memory(DataSize::from_mib(128))
            .with_artifact_size(DataSize::from_mib(5))
            .with_pinning(Pinning::Device);
        assert_eq!(c.name(), "ui");
        assert_eq!(c.memory(), DataSize::from_mib(128));
        assert_eq!(c.artifact_size(), DataSize::from_mib(5));
        assert!(!c.is_offloadable());
        assert_eq!(c.demand_cycles(DataSize::from_mib(1)), Cycles::from_mega(1));
    }

    #[test]
    fn batch_demand_amortises_only_when_batchable() {
        let shared = Component::new("render").with_demand(LinearModel::scaling(1e9, 10.0));
        let solo = Component::new("simulate")
            .with_demand(LinearModel::scaling(1e9, 10.0))
            .with_batchable(false);
        let sum = DataSize::from_mib(10);
        assert!(shared.is_batchable());
        assert!(!solo.is_batchable());
        let s = shared.batch_demand_cycles(5, sum).get();
        let n = solo.batch_demand_cycles(5, sum).get();
        assert_eq!(n - s, 4_000_000_000, "four extra fixed parts");
        // A single-member batch is just the job itself.
        assert_eq!(solo.batch_demand_cycles(1, sum), solo.demand_cycles(sum));
    }

    #[test]
    fn component_id_roundtrips() {
        let id = ComponentId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "c7");
    }
}
