//! The application task graph: a DAG of [`Component`]s connected by data
//! flows.

use core::fmt;
use std::collections::HashSet;

use ntc_simcore::units::{Cycles, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

use crate::component::{Component, ComponentId, LinearModel};

/// A directed data flow between two components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFlow {
    /// Producing component.
    pub from: ComponentId,
    /// Consuming component.
    pub to: ComponentId,
    /// Payload size as a function of job input size.
    pub payload: LinearModel,
}

impl DataFlow {
    /// The payload in bytes for a job with the given input size.
    pub fn payload_bytes(&self, input: DataSize) -> DataSize {
        self.payload.eval_bytes(input)
    }
}

/// Errors from building or validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a component id that does not exist.
    UnknownComponent(ComponentId),
    /// An edge connected a component to itself.
    SelfLoop(ComponentId),
    /// The same (from, to) edge was added twice.
    DuplicateEdge(ComponentId, ComponentId),
    /// The graph contains a directed cycle.
    Cycle,
    /// The graph has no components.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownComponent(id) => write!(f, "edge references unknown component {id}"),
            GraphError::SelfLoop(id) => write!(f, "component {id} has a self-loop"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::Cycle => write!(f, "task graph contains a cycle"),
            GraphError::Empty => write!(f, "task graph has no components"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incrementally builds a [`TaskGraph`].
///
/// # Examples
///
/// ```
/// use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel};
///
/// let mut b = TaskGraphBuilder::new("pipeline");
/// let read = b.add_component(Component::new("read"));
/// let work = b.add_component(Component::new("work").with_demand(LinearModel::constant(1e9)));
/// b.add_flow(read, work, LinearModel::scaling(0.0, 1.0));
/// let graph = b.build()?;
/// assert_eq!(graph.len(), 2);
/// # Ok::<(), ntc_taskgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    components: Vec<Component>,
    flows: Vec<DataFlow>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder for an application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder { name: name.into(), components: Vec::new(), flows: Vec::new() }
    }

    /// Adds a component, returning its id.
    pub fn add_component(&mut self, component: Component) -> ComponentId {
        let id = ComponentId::from_index(self.components.len());
        self.components.push(component);
        id
    }

    /// Adds a data flow from `from` to `to` with the given payload model.
    pub fn add_flow(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        payload: LinearModel,
    ) -> &mut Self {
        self.flows.push(DataFlow { from, to, payload });
        self
    }

    /// Validates and finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph is empty, references unknown
    /// components, has self-loops or duplicate edges, or contains a cycle.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.components.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.components.len();
        let mut seen = HashSet::new();
        for flow in &self.flows {
            if flow.from.index() >= n {
                return Err(GraphError::UnknownComponent(flow.from));
            }
            if flow.to.index() >= n {
                return Err(GraphError::UnknownComponent(flow.to));
            }
            if flow.from == flow.to {
                return Err(GraphError::SelfLoop(flow.from));
            }
            if !seen.insert((flow.from, flow.to)) {
                return Err(GraphError::DuplicateEdge(flow.from, flow.to));
            }
        }
        let graph = TaskGraph::assemble(self.name, self.components, self.flows);
        if graph.topo_order_internal().is_none() {
            return Err(GraphError::Cycle);
        }
        Ok(graph)
    }
}

/// A validated, immutable application task graph.
///
/// Nodes are [`Component`]s; edges are [`DataFlow`]s. The graph is
/// guaranteed acyclic. Job *input* enters at the entry components (no
/// predecessors) and results leave from the exit components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    components: Vec<Component>,
    flows: Vec<DataFlow>,
    successors: Vec<Vec<usize>>,   // flow indices, by source component
    predecessors: Vec<Vec<usize>>, // flow indices, by target component
}

impl TaskGraph {
    fn assemble(name: String, components: Vec<Component>, flows: Vec<DataFlow>) -> Self {
        let n = components.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for (i, f) in flows.iter().enumerate() {
            successors[f.from.index()].push(i);
            predecessors[f.to.index()].push(i);
        }
        TaskGraph { name, components, flows, successors, predecessors }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the graph has no components (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// Iterates over `(id, component)` pairs in id order.
    pub fn components(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components.iter().enumerate().map(|(i, c)| (ComponentId::from_index(i), c))
    }

    /// All component ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.components.len()).map(ComponentId::from_index)
    }

    /// All data flows.
    pub fn flows(&self) -> &[DataFlow] {
        &self.flows
    }

    /// Outgoing flows of `id`.
    pub fn flows_from(&self, id: ComponentId) -> impl Iterator<Item = &DataFlow> {
        self.successors[id.index()].iter().map(|&i| &self.flows[i])
    }

    /// Incoming flows of `id`.
    pub fn flows_into(&self, id: ComponentId) -> impl Iterator<Item = &DataFlow> {
        self.predecessors[id.index()].iter().map(|&i| &self.flows[i])
    }

    /// Successor component ids of `id`.
    pub fn successors(&self, id: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.flows_from(id).map(|f| f.to)
    }

    /// Predecessor component ids of `id`.
    pub fn predecessors(&self, id: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.flows_into(id).map(|f| f.from)
    }

    /// Components with no predecessors (where job input enters).
    pub fn entries(&self) -> Vec<ComponentId> {
        self.ids().filter(|id| self.predecessors[id.index()].is_empty()).collect()
    }

    /// Components with no successors (where results leave).
    pub fn exits(&self) -> Vec<ComponentId> {
        self.ids().filter(|id| self.successors[id.index()].is_empty()).collect()
    }

    fn topo_order_internal(&self) -> Option<Vec<ComponentId>> {
        let n = self.components.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.predecessors[i].len()).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Pop smallest index first for a deterministic order.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(ComponentId::from_index(u));
            for &fi in &self.successors[u] {
                let v = self.flows[fi].to.index();
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    // Insert keeping `ready` sorted descending.
                    let pos = ready.partition_point(|&x| x > v);
                    ready.insert(pos, v);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// A deterministic topological order of all components.
    pub fn topo_order(&self) -> Vec<ComponentId> {
        self.topo_order_internal().expect("built TaskGraph is acyclic")
    }

    /// Total compute demand of one job with the given input size.
    pub fn total_work(&self, input: DataSize) -> Cycles {
        self.components.iter().map(|c| c.demand_cycles(input)).sum()
    }

    /// Total bytes moved across all flows for one job with the given input.
    pub fn total_flow_bytes(&self, input: DataSize) -> DataSize {
        self.flows.iter().map(|f| f.payload_bytes(input)).sum()
    }

    /// The length and node sequence of the critical (longest) path, where
    /// each component's duration is given by `node_time` and each flow's
    /// duration by `edge_time`.
    pub fn critical_path(
        &self,
        mut node_time: impl FnMut(ComponentId) -> SimDuration,
        mut edge_time: impl FnMut(&DataFlow) -> SimDuration,
    ) -> (SimDuration, Vec<ComponentId>) {
        let order = self.topo_order();
        let n = self.len();
        let mut finish = vec![SimDuration::ZERO; n];
        let mut best_pred: Vec<Option<usize>> = vec![None; n];
        for &id in &order {
            let u = id.index();
            let mut start = SimDuration::ZERO;
            for &fi in &self.predecessors[u] {
                let f = &self.flows[fi];
                let candidate = finish[f.from.index()] + edge_time(f);
                if candidate > start {
                    start = candidate;
                    best_pred[u] = Some(f.from.index());
                }
            }
            finish[u] = start + node_time(id);
        }
        let (mut u, &len) = finish
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, core::cmp::Reverse(i)))
            .expect("non-empty graph");
        let mut path = vec![ComponentId::from_index(u)];
        while let Some(p) = best_pred[u] {
            path.push(ComponentId::from_index(p));
            u = p;
        }
        path.reverse();
        (len, path)
    }

    /// Components reachable from `start` (inclusive) following flow
    /// direction.
    pub fn reachable_from(&self, start: ComponentId) -> HashSet<ComponentId> {
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            if seen.insert(u) {
                stack.extend(self.successors(u));
            }
        }
        seen
    }

    /// Renders the graph in Graphviz DOT format (component names, pinning
    /// and demand in the labels).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        for (id, c) in self.components() {
            let shape = if c.is_offloadable() { "ellipse" } else { "box" };
            let _ = writeln!(out, "  {} [label=\"{}\", shape={}];", id, c.name(), shape);
        }
        for f in &self.flows {
            let _ = writeln!(out, "  {} -> {};", f.from, f.to);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Pinning;

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_component(Component::new("a").with_pinning(Pinning::Device));
        let l = b.add_component(Component::new("left").with_demand(LinearModel::constant(2e6)));
        let r = b.add_component(Component::new("right").with_demand(LinearModel::constant(3e6)));
        let d = b.add_component(Component::new("join"));
        b.add_flow(a, l, LinearModel::constant(100.0));
        b.add_flow(a, r, LinearModel::constant(100.0));
        b.add_flow(l, d, LinearModel::constant(50.0));
        b.add_flow(r, d, LinearModel::constant(50.0));
        b.build().unwrap()
    }

    #[test]
    fn builds_and_exposes_structure() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.name(), "diamond");
        assert_eq!(g.entries(), vec![ComponentId::from_index(0)]);
        assert_eq!(g.exits(), vec![ComponentId::from_index(3)]);
        let a = ComponentId::from_index(0);
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ.len(), 2);
        let join = ComponentId::from_index(3);
        assert_eq!(g.predecessors(join).count(), 2);
        assert_eq!(g.flows().len(), 4);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        let pos: Vec<usize> =
            (0..4).map(|i| order.iter().position(|&x| x.index() == i).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topo_order_is_deterministic() {
        let g = diamond();
        assert_eq!(g.topo_order(), g.topo_order());
        // Ties broken by smallest id.
        assert_eq!(g.topo_order()[1], ComponentId::from_index(1));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaskGraphBuilder::new("cyclic");
        let x = b.add_component(Component::new("x"));
        let y = b.add_component(Component::new("y"));
        b.add_flow(x, y, LinearModel::ZERO);
        b.add_flow(y, x, LinearModel::ZERO);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = TaskGraphBuilder::new("loopy");
        let x = b.add_component(Component::new("x"));
        b.add_flow(x, x, LinearModel::ZERO);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(x));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = TaskGraphBuilder::new("dup");
        let x = b.add_component(Component::new("x"));
        let y = b.add_component(Component::new("y"));
        b.add_flow(x, y, LinearModel::ZERO);
        b.add_flow(x, y, LinearModel::ZERO);
        assert_eq!(b.build().unwrap_err(), GraphError::DuplicateEdge(x, y));
    }

    #[test]
    fn unknown_component_is_rejected() {
        let mut b = TaskGraphBuilder::new("bad");
        let x = b.add_component(Component::new("x"));
        b.add_flow(x, ComponentId::from_index(9), LinearModel::ZERO);
        assert!(matches!(b.build().unwrap_err(), GraphError::UnknownComponent(_)));
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(TaskGraphBuilder::new("none").build().unwrap_err(), GraphError::Empty);
        assert!(GraphError::Empty.to_string().contains("no components"));
    }

    #[test]
    fn critical_path_picks_longest_branch() {
        let g = diamond();
        let (len, path) = g.critical_path(
            |id| match id.index() {
                1 => SimDuration::from_secs(2),
                2 => SimDuration::from_secs(3),
                _ => SimDuration::from_secs(1),
            },
            |_| SimDuration::from_millis(100),
        );
        // a(1) + 0.1 + right(3) + 0.1 + join(1) = 5.2s
        assert_eq!(len, SimDuration::from_millis(5200));
        assert_eq!(path.iter().map(|c| c.index()).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn total_work_and_flow_bytes() {
        let g = diamond();
        assert_eq!(g.total_work(DataSize::ZERO), Cycles::from_mega(5));
        assert_eq!(g.total_flow_bytes(DataSize::ZERO), DataSize::from_bytes(300));
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let r = g.reachable_from(ComponentId::from_index(1));
        assert_eq!(r.len(), 2); // left and join
        assert!(r.contains(&ComponentId::from_index(3)));
    }

    #[test]
    fn dot_export_mentions_every_component() {
        let g = diamond();
        let dot = g.to_dot();
        for (_, c) in g.components() {
            assert!(dot.contains(c.name()));
        }
        assert!(dot.starts_with("digraph"));
    }
}
