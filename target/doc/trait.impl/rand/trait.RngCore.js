(function() {
    const implementors = Object.fromEntries([["ntc_simcore",[["impl RngCore for <a class=\"struct\" href=\"ntc_simcore/rng/struct.RngStream.html\" title=\"struct ntc_simcore::rng::RngStream\">RngStream</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[166]}