(function() {
    const implementors = Object.fromEntries([["ntc_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"ntc_core/policy/enum.Backend.html\" title=\"enum ntc_core::policy::Backend\">Backend</a>&gt; for <a class=\"struct\" href=\"ntc_core/site/struct.SiteId.html\" title=\"struct ntc_core::site::SiteId\">SiteId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[398]}