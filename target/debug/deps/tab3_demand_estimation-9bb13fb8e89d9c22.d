/root/repo/target/debug/deps/tab3_demand_estimation-9bb13fb8e89d9c22.d: crates/bench/src/bin/tab3_demand_estimation.rs Cargo.toml

/root/repo/target/debug/deps/libtab3_demand_estimation-9bb13fb8e89d9c22.rmeta: crates/bench/src/bin/tab3_demand_estimation.rs Cargo.toml

crates/bench/src/bin/tab3_demand_estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
