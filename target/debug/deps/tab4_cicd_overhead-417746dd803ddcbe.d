/root/repo/target/debug/deps/tab4_cicd_overhead-417746dd803ddcbe.d: crates/bench/src/bin/tab4_cicd_overhead.rs

/root/repo/target/debug/deps/tab4_cicd_overhead-417746dd803ddcbe: crates/bench/src/bin/tab4_cicd_overhead.rs

crates/bench/src/bin/tab4_cicd_overhead.rs:
