/root/repo/target/debug/deps/ntc_partition-d36dea0cf73a52d2.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/debug/deps/libntc_partition-d36dea0cf73a52d2.rmeta: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
