/root/repo/target/debug/deps/ntc_partition-1f725a88c26697d4.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/debug/deps/libntc_partition-1f725a88c26697d4.rlib: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/debug/deps/libntc_partition-1f725a88c26697d4.rmeta: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
