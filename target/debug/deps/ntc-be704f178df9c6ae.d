/root/repo/target/debug/deps/ntc-be704f178df9c6ae.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libntc-be704f178df9c6ae.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
