/root/repo/target/debug/deps/fig1_latency_crossover-b71c1713ec472ab2.d: crates/bench/src/bin/fig1_latency_crossover.rs

/root/repo/target/debug/deps/fig1_latency_crossover-b71c1713ec472ab2: crates/bench/src/bin/fig1_latency_crossover.rs

crates/bench/src/bin/fig1_latency_crossover.rs:
