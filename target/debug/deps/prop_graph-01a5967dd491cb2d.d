/root/repo/target/debug/deps/prop_graph-01a5967dd491cb2d.d: crates/taskgraph/tests/prop_graph.rs Cargo.toml

/root/repo/target/debug/deps/libprop_graph-01a5967dd491cb2d.rmeta: crates/taskgraph/tests/prop_graph.rs Cargo.toml

crates/taskgraph/tests/prop_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
