/root/repo/target/debug/deps/ntc_serverless-e41f87bdf2f2c7f4.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libntc_serverless-e41f87bdf2f2c7f4.rmeta: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs Cargo.toml

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
