/root/repo/target/debug/deps/proptest-e897c04f4d71fb3c.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e897c04f4d71fb3c.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e897c04f4d71fb3c.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
