/root/repo/target/debug/deps/serde-60d5e3a1ac530bfc.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-60d5e3a1ac530bfc.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
