/root/repo/target/debug/deps/fig8_connectivity_extension-ce915acd56e28e59.d: crates/bench/src/bin/fig8_connectivity_extension.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_connectivity_extension-ce915acd56e28e59.rmeta: crates/bench/src/bin/fig8_connectivity_extension.rs Cargo.toml

crates/bench/src/bin/fig8_connectivity_extension.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
