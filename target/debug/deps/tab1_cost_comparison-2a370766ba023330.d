/root/repo/target/debug/deps/tab1_cost_comparison-2a370766ba023330.d: crates/bench/src/bin/tab1_cost_comparison.rs

/root/repo/target/debug/deps/tab1_cost_comparison-2a370766ba023330: crates/bench/src/bin/tab1_cost_comparison.rs

crates/bench/src/bin/tab1_cost_comparison.rs:
