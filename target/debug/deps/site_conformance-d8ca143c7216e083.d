/root/repo/target/debug/deps/site_conformance-d8ca143c7216e083.d: crates/core/tests/site_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libsite_conformance-d8ca143c7216e083.rmeta: crates/core/tests/site_conformance.rs Cargo.toml

crates/core/tests/site_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
