/root/repo/target/debug/deps/ntc_edge-4bea7fc668686522.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs Cargo.toml

/root/repo/target/debug/deps/libntc_edge-4bea7fc668686522.rmeta: crates/edge/src/lib.rs crates/edge/src/fleet.rs Cargo.toml

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
