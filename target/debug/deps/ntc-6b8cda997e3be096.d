/root/repo/target/debug/deps/ntc-6b8cda997e3be096.d: src/main.rs

/root/repo/target/debug/deps/ntc-6b8cda997e3be096: src/main.rs

src/main.rs:
