/root/repo/target/debug/deps/site_conformance-0971a85910259f8b.d: crates/core/tests/site_conformance.rs

/root/repo/target/debug/deps/site_conformance-0971a85910259f8b: crates/core/tests/site_conformance.rs

crates/core/tests/site_conformance.rs:
