/root/repo/target/debug/deps/prop_invariants-293c713e60445ce0.d: tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-293c713e60445ce0.rmeta: tests/prop_invariants.rs Cargo.toml

tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
