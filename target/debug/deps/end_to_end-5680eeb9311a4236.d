/root/repo/target/debug/deps/end_to_end-5680eeb9311a4236.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5680eeb9311a4236: tests/end_to_end.rs

tests/end_to_end.rs:
