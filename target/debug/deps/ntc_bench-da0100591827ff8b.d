/root/repo/target/debug/deps/ntc_bench-da0100591827ff8b.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libntc_bench-da0100591827ff8b.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
