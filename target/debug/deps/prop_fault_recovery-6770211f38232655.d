/root/repo/target/debug/deps/prop_fault_recovery-6770211f38232655.d: crates/core/tests/prop_fault_recovery.rs

/root/repo/target/debug/deps/prop_fault_recovery-6770211f38232655: crates/core/tests/prop_fault_recovery.rs

crates/core/tests/prop_fault_recovery.rs:
