/root/repo/target/debug/deps/bench_kernel_baseline-904cacdff167e926.d: crates/bench/src/bin/bench_kernel_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libbench_kernel_baseline-904cacdff167e926.rmeta: crates/bench/src/bin/bench_kernel_baseline.rs Cargo.toml

crates/bench/src/bin/bench_kernel_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
