/root/repo/target/debug/deps/engine_scenarios-1dab61fc13526d81.d: crates/core/tests/engine_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libengine_scenarios-1dab61fc13526d81.rmeta: crates/core/tests/engine_scenarios.rs Cargo.toml

crates/core/tests/engine_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
