/root/repo/target/debug/deps/ntc_edge-790e94d5b0f23a44.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/debug/deps/libntc_edge-790e94d5b0f23a44.rlib: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/debug/deps/libntc_edge-790e94d5b0f23a44.rmeta: crates/edge/src/lib.rs crates/edge/src/fleet.rs

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
