/root/repo/target/debug/deps/prop_fault_recovery-a4e02dd1536c1f94.d: crates/core/tests/prop_fault_recovery.rs

/root/repo/target/debug/deps/prop_fault_recovery-a4e02dd1536c1f94: crates/core/tests/prop_fault_recovery.rs

crates/core/tests/prop_fault_recovery.rs:
