/root/repo/target/debug/deps/fig2_cold_start-3a38ab47e3844d14.d: crates/bench/src/bin/fig2_cold_start.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_cold_start-3a38ab47e3844d14.rmeta: crates/bench/src/bin/fig2_cold_start.rs Cargo.toml

crates/bench/src/bin/fig2_cold_start.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
