/root/repo/target/debug/deps/ntc_offload-ea9b805b39280e6a.d: src/lib.rs

/root/repo/target/debug/deps/libntc_offload-ea9b805b39280e6a.rlib: src/lib.rs

/root/repo/target/debug/deps/libntc_offload-ea9b805b39280e6a.rmeta: src/lib.rs

src/lib.rs:
