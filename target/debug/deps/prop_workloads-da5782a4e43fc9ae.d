/root/repo/target/debug/deps/prop_workloads-da5782a4e43fc9ae.d: crates/workloads/tests/prop_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libprop_workloads-da5782a4e43fc9ae.rmeta: crates/workloads/tests/prop_workloads.rs Cargo.toml

crates/workloads/tests/prop_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
