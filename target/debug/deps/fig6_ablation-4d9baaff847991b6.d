/root/repo/target/debug/deps/fig6_ablation-4d9baaff847991b6.d: crates/bench/src/bin/fig6_ablation.rs

/root/repo/target/debug/deps/fig6_ablation-4d9baaff847991b6: crates/bench/src/bin/fig6_ablation.rs

crates/bench/src/bin/fig6_ablation.rs:
