/root/repo/target/debug/deps/prop_graph-369076e12b94e978.d: crates/taskgraph/tests/prop_graph.rs

/root/repo/target/debug/deps/prop_graph-369076e12b94e978: crates/taskgraph/tests/prop_graph.rs

crates/taskgraph/tests/prop_graph.rs:
