/root/repo/target/debug/deps/prop_workloads-c93ebc0b242b1ca4.d: crates/workloads/tests/prop_workloads.rs

/root/repo/target/debug/deps/prop_workloads-c93ebc0b242b1ca4: crates/workloads/tests/prop_workloads.rs

crates/workloads/tests/prop_workloads.rs:
