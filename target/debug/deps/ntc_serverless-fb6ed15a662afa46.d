/root/repo/target/debug/deps/ntc_serverless-fb6ed15a662afa46.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libntc_serverless-fb6ed15a662afa46.rmeta: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs Cargo.toml

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
