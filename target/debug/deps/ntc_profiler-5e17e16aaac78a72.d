/root/repo/target/debug/deps/ntc_profiler-5e17e16aaac78a72.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/libntc_profiler-5e17e16aaac78a72.rmeta: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
