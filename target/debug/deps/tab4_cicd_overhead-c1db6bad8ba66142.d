/root/repo/target/debug/deps/tab4_cicd_overhead-c1db6bad8ba66142.d: crates/bench/src/bin/tab4_cicd_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_cicd_overhead-c1db6bad8ba66142.rmeta: crates/bench/src/bin/tab4_cicd_overhead.rs Cargo.toml

crates/bench/src/bin/tab4_cicd_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
