/root/repo/target/debug/deps/prop_platform-9d11bf52e4396216.d: crates/serverless/tests/prop_platform.rs Cargo.toml

/root/repo/target/debug/deps/libprop_platform-9d11bf52e4396216.rmeta: crates/serverless/tests/prop_platform.rs Cargo.toml

crates/serverless/tests/prop_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
