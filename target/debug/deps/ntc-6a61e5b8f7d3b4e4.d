/root/repo/target/debug/deps/ntc-6a61e5b8f7d3b4e4.d: src/main.rs

/root/repo/target/debug/deps/ntc-6a61e5b8f7d3b4e4: src/main.rs

src/main.rs:
