/root/repo/target/debug/deps/serde-559e7c276474926a.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-559e7c276474926a.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-559e7c276474926a.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
