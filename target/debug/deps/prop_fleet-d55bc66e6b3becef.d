/root/repo/target/debug/deps/prop_fleet-d55bc66e6b3becef.d: crates/edge/tests/prop_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libprop_fleet-d55bc66e6b3becef.rmeta: crates/edge/tests/prop_fleet.rs Cargo.toml

crates/edge/tests/prop_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
