/root/repo/target/debug/deps/tab4_cicd_overhead-db71fcf000728250.d: crates/bench/src/bin/tab4_cicd_overhead.rs

/root/repo/target/debug/deps/tab4_cicd_overhead-db71fcf000728250: crates/bench/src/bin/tab4_cicd_overhead.rs

crates/bench/src/bin/tab4_cicd_overhead.rs:
