/root/repo/target/debug/deps/tab1_cost_comparison-c28f70d9b9c96588.d: crates/bench/src/bin/tab1_cost_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_cost_comparison-c28f70d9b9c96588.rmeta: crates/bench/src/bin/tab1_cost_comparison.rs Cargo.toml

crates/bench/src/bin/tab1_cost_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
