/root/repo/target/debug/deps/engine_scenarios-ad2a9c1349f77343.d: crates/core/tests/engine_scenarios.rs

/root/repo/target/debug/deps/engine_scenarios-ad2a9c1349f77343: crates/core/tests/engine_scenarios.rs

crates/core/tests/engine_scenarios.rs:
