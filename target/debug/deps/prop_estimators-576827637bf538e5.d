/root/repo/target/debug/deps/prop_estimators-576827637bf538e5.d: crates/profiler/tests/prop_estimators.rs Cargo.toml

/root/repo/target/debug/deps/libprop_estimators-576827637bf538e5.rmeta: crates/profiler/tests/prop_estimators.rs Cargo.toml

crates/profiler/tests/prop_estimators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
