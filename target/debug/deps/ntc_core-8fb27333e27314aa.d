/root/repo/target/debug/deps/ntc_core-8fb27333e27314aa.d: crates/core/src/lib.rs crates/core/src/deploy.rs crates/core/src/device.rs crates/core/src/engine.rs crates/core/src/engine/accounting.rs crates/core/src/engine/admission.rs crates/core/src/engine/execute.rs crates/core/src/engine/recovery.rs crates/core/src/engine/transfer.rs crates/core/src/environment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/site/mod.rs crates/core/src/site/cloud.rs crates/core/src/site/device.rs crates/core/src/site/edge.rs

/root/repo/target/debug/deps/libntc_core-8fb27333e27314aa.rlib: crates/core/src/lib.rs crates/core/src/deploy.rs crates/core/src/device.rs crates/core/src/engine.rs crates/core/src/engine/accounting.rs crates/core/src/engine/admission.rs crates/core/src/engine/execute.rs crates/core/src/engine/recovery.rs crates/core/src/engine/transfer.rs crates/core/src/environment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/site/mod.rs crates/core/src/site/cloud.rs crates/core/src/site/device.rs crates/core/src/site/edge.rs

/root/repo/target/debug/deps/libntc_core-8fb27333e27314aa.rmeta: crates/core/src/lib.rs crates/core/src/deploy.rs crates/core/src/device.rs crates/core/src/engine.rs crates/core/src/engine/accounting.rs crates/core/src/engine/admission.rs crates/core/src/engine/execute.rs crates/core/src/engine/recovery.rs crates/core/src/engine/transfer.rs crates/core/src/environment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/site/mod.rs crates/core/src/site/cloud.rs crates/core/src/site/device.rs crates/core/src/site/edge.rs

crates/core/src/lib.rs:
crates/core/src/deploy.rs:
crates/core/src/device.rs:
crates/core/src/engine.rs:
crates/core/src/engine/accounting.rs:
crates/core/src/engine/admission.rs:
crates/core/src/engine/execute.rs:
crates/core/src/engine/recovery.rs:
crates/core/src/engine/transfer.rs:
crates/core/src/environment.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/site/mod.rs:
crates/core/src/site/cloud.rs:
crates/core/src/site/device.rs:
crates/core/src/site/edge.rs:
