/root/repo/target/debug/deps/fig9_fault_tolerance-0837b6744b9e1588.d: crates/bench/src/bin/fig9_fault_tolerance.rs

/root/repo/target/debug/deps/fig9_fault_tolerance-0837b6744b9e1588: crates/bench/src/bin/fig9_fault_tolerance.rs

crates/bench/src/bin/fig9_fault_tolerance.rs:
