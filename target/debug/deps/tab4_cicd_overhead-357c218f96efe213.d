/root/repo/target/debug/deps/tab4_cicd_overhead-357c218f96efe213.d: crates/bench/src/bin/tab4_cicd_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_cicd_overhead-357c218f96efe213.rmeta: crates/bench/src/bin/tab4_cicd_overhead.rs Cargo.toml

crates/bench/src/bin/tab4_cicd_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
