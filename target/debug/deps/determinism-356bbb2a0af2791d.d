/root/repo/target/debug/deps/determinism-356bbb2a0af2791d.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-356bbb2a0af2791d: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
