/root/repo/target/debug/deps/ntc_net-ec0fba8bc8bc0e53.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libntc_net-ec0fba8bc8bc0e53.rmeta: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
