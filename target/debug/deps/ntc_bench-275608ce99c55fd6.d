/root/repo/target/debug/deps/ntc_bench-275608ce99c55fd6.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

/root/repo/target/debug/deps/libntc_bench-275608ce99c55fd6.rlib: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

/root/repo/target/debug/deps/libntc_bench-275608ce99c55fd6.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
