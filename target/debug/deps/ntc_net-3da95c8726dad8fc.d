/root/repo/target/debug/deps/ntc_net-3da95c8726dad8fc.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/ntc_net-3da95c8726dad8fc: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
