/root/repo/target/debug/deps/fig4_deadline_batching-f9fe03c32843fdf0.d: crates/bench/src/bin/fig4_deadline_batching.rs

/root/repo/target/debug/deps/fig4_deadline_batching-f9fe03c32843fdf0: crates/bench/src/bin/fig4_deadline_batching.rs

crates/bench/src/bin/fig4_deadline_batching.rs:
