/root/repo/target/debug/deps/prop_event_queue-ab521d665481efbe.d: crates/simcore/tests/prop_event_queue.rs Cargo.toml

/root/repo/target/debug/deps/libprop_event_queue-ab521d665481efbe.rmeta: crates/simcore/tests/prop_event_queue.rs Cargo.toml

crates/simcore/tests/prop_event_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
