/root/repo/target/debug/deps/fig7_offpeak_extension-59253c5e3489d392.d: crates/bench/src/bin/fig7_offpeak_extension.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_offpeak_extension-59253c5e3489d392.rmeta: crates/bench/src/bin/fig7_offpeak_extension.rs Cargo.toml

crates/bench/src/bin/fig7_offpeak_extension.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
