/root/repo/target/debug/deps/rand-4d7f4739b3047daf.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4d7f4739b3047daf.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
