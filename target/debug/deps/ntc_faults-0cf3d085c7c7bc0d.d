/root/repo/target/debug/deps/ntc_faults-0cf3d085c7c7bc0d.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/debug/deps/libntc_faults-0cf3d085c7c7bc0d.rlib: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/debug/deps/libntc_faults-0cf3d085c7c7bc0d.rmeta: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
