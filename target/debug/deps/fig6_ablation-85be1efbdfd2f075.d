/root/repo/target/debug/deps/fig6_ablation-85be1efbdfd2f075.d: crates/bench/src/bin/fig6_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_ablation-85be1efbdfd2f075.rmeta: crates/bench/src/bin/fig6_ablation.rs Cargo.toml

crates/bench/src/bin/fig6_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
