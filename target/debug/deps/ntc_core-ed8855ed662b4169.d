/root/repo/target/debug/deps/ntc_core-ed8855ed662b4169.d: crates/core/src/lib.rs crates/core/src/deploy.rs crates/core/src/device.rs crates/core/src/engine.rs crates/core/src/engine/accounting.rs crates/core/src/engine/admission.rs crates/core/src/engine/execute.rs crates/core/src/engine/recovery.rs crates/core/src/engine/tests.rs crates/core/src/engine/transfer.rs crates/core/src/environment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/site/mod.rs crates/core/src/site/cloud.rs crates/core/src/site/device.rs crates/core/src/site/edge.rs Cargo.toml

/root/repo/target/debug/deps/libntc_core-ed8855ed662b4169.rmeta: crates/core/src/lib.rs crates/core/src/deploy.rs crates/core/src/device.rs crates/core/src/engine.rs crates/core/src/engine/accounting.rs crates/core/src/engine/admission.rs crates/core/src/engine/execute.rs crates/core/src/engine/recovery.rs crates/core/src/engine/tests.rs crates/core/src/engine/transfer.rs crates/core/src/environment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/site/mod.rs crates/core/src/site/cloud.rs crates/core/src/site/device.rs crates/core/src/site/edge.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/deploy.rs:
crates/core/src/device.rs:
crates/core/src/engine.rs:
crates/core/src/engine/accounting.rs:
crates/core/src/engine/admission.rs:
crates/core/src/engine/execute.rs:
crates/core/src/engine/recovery.rs:
crates/core/src/engine/tests.rs:
crates/core/src/engine/transfer.rs:
crates/core/src/environment.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/site/mod.rs:
crates/core/src/site/cloud.rs:
crates/core/src/site/device.rs:
crates/core/src/site/edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
