/root/repo/target/debug/deps/prop_event_queue-30bf2eb489c14fd1.d: crates/simcore/tests/prop_event_queue.rs

/root/repo/target/debug/deps/prop_event_queue-30bf2eb489c14fd1: crates/simcore/tests/prop_event_queue.rs

crates/simcore/tests/prop_event_queue.rs:
