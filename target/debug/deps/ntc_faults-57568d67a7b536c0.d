/root/repo/target/debug/deps/ntc_faults-57568d67a7b536c0.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/debug/deps/ntc_faults-57568d67a7b536c0: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
