/root/repo/target/debug/deps/ntc_offload-b1a9fb700e9671cb.d: src/lib.rs

/root/repo/target/debug/deps/ntc_offload-b1a9fb700e9671cb: src/lib.rs

src/lib.rs:
