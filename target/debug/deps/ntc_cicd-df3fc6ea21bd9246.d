/root/repo/target/debug/deps/ntc_cicd-df3fc6ea21bd9246.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/debug/deps/libntc_cicd-df3fc6ea21bd9246.rlib: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/debug/deps/libntc_cicd-df3fc6ea21bd9246.rmeta: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
