/root/repo/target/debug/deps/ntc_bench-136f75d1d5806ac3.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/debug/deps/libntc_bench-136f75d1d5806ac3.rlib: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/debug/deps/libntc_bench-136f75d1d5806ac3.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
