/root/repo/target/debug/deps/ntc_workloads-71b10df97f37aef0.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/debug/deps/ntc_workloads-71b10df97f37aef0: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
