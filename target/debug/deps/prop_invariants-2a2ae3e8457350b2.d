/root/repo/target/debug/deps/prop_invariants-2a2ae3e8457350b2.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-2a2ae3e8457350b2: tests/prop_invariants.rs

tests/prop_invariants.rs:
