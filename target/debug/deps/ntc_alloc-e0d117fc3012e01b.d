/root/repo/target/debug/deps/ntc_alloc-e0d117fc3012e01b.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs Cargo.toml

/root/repo/target/debug/deps/libntc_alloc-e0d117fc3012e01b.rmeta: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs Cargo.toml

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
