/root/repo/target/debug/deps/end_to_end-54fdf35c03581bf0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-54fdf35c03581bf0: tests/end_to_end.rs

tests/end_to_end.rs:
