/root/repo/target/debug/deps/fig9_fault_tolerance-0960f1b6e9cd56bb.d: crates/bench/src/bin/fig9_fault_tolerance.rs

/root/repo/target/debug/deps/fig9_fault_tolerance-0960f1b6e9cd56bb: crates/bench/src/bin/fig9_fault_tolerance.rs

crates/bench/src/bin/fig9_fault_tolerance.rs:
