/root/repo/target/debug/deps/ntc_simcore-e7a63cc7a5f0058d.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

/root/repo/target/debug/deps/ntc_simcore-e7a63cc7a5f0058d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
