/root/repo/target/debug/deps/tab3_demand_estimation-6e8b8bbd303b6f34.d: crates/bench/src/bin/tab3_demand_estimation.rs

/root/repo/target/debug/deps/tab3_demand_estimation-6e8b8bbd303b6f34: crates/bench/src/bin/tab3_demand_estimation.rs

crates/bench/src/bin/tab3_demand_estimation.rs:
