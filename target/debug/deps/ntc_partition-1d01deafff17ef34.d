/root/repo/target/debug/deps/ntc_partition-1d01deafff17ef34.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/debug/deps/ntc_partition-1d01deafff17ef34: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
