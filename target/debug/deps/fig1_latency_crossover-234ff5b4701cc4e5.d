/root/repo/target/debug/deps/fig1_latency_crossover-234ff5b4701cc4e5.d: crates/bench/src/bin/fig1_latency_crossover.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_latency_crossover-234ff5b4701cc4e5.rmeta: crates/bench/src/bin/fig1_latency_crossover.rs Cargo.toml

crates/bench/src/bin/fig1_latency_crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
