/root/repo/target/debug/deps/prop_simcore-d991ff175ddf9fcb.d: crates/simcore/tests/prop_simcore.rs Cargo.toml

/root/repo/target/debug/deps/libprop_simcore-d991ff175ddf9fcb.rmeta: crates/simcore/tests/prop_simcore.rs Cargo.toml

crates/simcore/tests/prop_simcore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
