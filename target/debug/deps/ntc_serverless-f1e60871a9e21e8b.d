/root/repo/target/debug/deps/ntc_serverless-f1e60871a9e21e8b.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/debug/deps/libntc_serverless-f1e60871a9e21e8b.rlib: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/debug/deps/libntc_serverless-f1e60871a9e21e8b.rmeta: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
