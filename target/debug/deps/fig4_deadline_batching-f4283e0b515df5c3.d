/root/repo/target/debug/deps/fig4_deadline_batching-f4283e0b515df5c3.d: crates/bench/src/bin/fig4_deadline_batching.rs

/root/repo/target/debug/deps/fig4_deadline_batching-f4283e0b515df5c3: crates/bench/src/bin/fig4_deadline_batching.rs

crates/bench/src/bin/fig4_deadline_batching.rs:
