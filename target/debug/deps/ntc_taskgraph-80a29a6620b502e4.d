/root/repo/target/debug/deps/ntc_taskgraph-80a29a6620b502e4.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/debug/deps/libntc_taskgraph-80a29a6620b502e4.rmeta: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
