/root/repo/target/debug/deps/ntc_simcore-854e5bd81bbc39df.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libntc_simcore-854e5bd81bbc39df.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
