/root/repo/target/debug/deps/ntc_profiler-69404841182a5b44.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libntc_profiler-69404841182a5b44.rmeta: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
