/root/repo/target/debug/deps/tab5_e2e_policies-b60a487bbe3c58df.d: crates/bench/src/bin/tab5_e2e_policies.rs Cargo.toml

/root/repo/target/debug/deps/libtab5_e2e_policies-b60a487bbe3c58df.rmeta: crates/bench/src/bin/tab5_e2e_policies.rs Cargo.toml

crates/bench/src/bin/tab5_e2e_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
