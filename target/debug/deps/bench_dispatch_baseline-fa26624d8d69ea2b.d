/root/repo/target/debug/deps/bench_dispatch_baseline-fa26624d8d69ea2b.d: crates/bench/src/bin/bench_dispatch_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libbench_dispatch_baseline-fa26624d8d69ea2b.rmeta: crates/bench/src/bin/bench_dispatch_baseline.rs Cargo.toml

crates/bench/src/bin/bench_dispatch_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
