/root/repo/target/debug/deps/ntc_partition-9c21e1a18bc9bb72.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libntc_partition-9c21e1a18bc9bb72.rmeta: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
