/root/repo/target/debug/deps/ntc_profiler-4f250c6b7c441606.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/libntc_profiler-4f250c6b7c441606.rlib: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/libntc_profiler-4f250c6b7c441606.rmeta: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
