/root/repo/target/debug/deps/fig8_connectivity_extension-fda283afb5b45700.d: crates/bench/src/bin/fig8_connectivity_extension.rs

/root/repo/target/debug/deps/fig8_connectivity_extension-fda283afb5b45700: crates/bench/src/bin/fig8_connectivity_extension.rs

crates/bench/src/bin/fig8_connectivity_extension.rs:
