/root/repo/target/debug/deps/prop_invariants-a0eae776eded7fd3.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-a0eae776eded7fd3: tests/prop_invariants.rs

tests/prop_invariants.rs:
