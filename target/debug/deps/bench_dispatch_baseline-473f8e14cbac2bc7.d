/root/repo/target/debug/deps/bench_dispatch_baseline-473f8e14cbac2bc7.d: crates/bench/src/bin/bench_dispatch_baseline.rs

/root/repo/target/debug/deps/bench_dispatch_baseline-473f8e14cbac2bc7: crates/bench/src/bin/bench_dispatch_baseline.rs

crates/bench/src/bin/bench_dispatch_baseline.rs:
