/root/repo/target/debug/deps/prop_simcore-93f904c047dab861.d: crates/simcore/tests/prop_simcore.rs

/root/repo/target/debug/deps/prop_simcore-93f904c047dab861: crates/simcore/tests/prop_simcore.rs

crates/simcore/tests/prop_simcore.rs:
