/root/repo/target/debug/deps/tab2_partition_quality-90a7f4b8b63cb413.d: crates/bench/src/bin/tab2_partition_quality.rs Cargo.toml

/root/repo/target/debug/deps/libtab2_partition_quality-90a7f4b8b63cb413.rmeta: crates/bench/src/bin/tab2_partition_quality.rs Cargo.toml

crates/bench/src/bin/tab2_partition_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
