/root/repo/target/debug/deps/ntc_simcore-ae560558f181927a.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

/root/repo/target/debug/deps/libntc_simcore-ae560558f181927a.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
