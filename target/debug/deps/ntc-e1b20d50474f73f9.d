/root/repo/target/debug/deps/ntc-e1b20d50474f73f9.d: src/main.rs

/root/repo/target/debug/deps/ntc-e1b20d50474f73f9: src/main.rs

src/main.rs:
