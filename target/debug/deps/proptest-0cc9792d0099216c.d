/root/repo/target/debug/deps/proptest-0cc9792d0099216c.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0cc9792d0099216c.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
