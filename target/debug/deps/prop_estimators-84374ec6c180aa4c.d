/root/repo/target/debug/deps/prop_estimators-84374ec6c180aa4c.d: crates/profiler/tests/prop_estimators.rs

/root/repo/target/debug/deps/prop_estimators-84374ec6c180aa4c: crates/profiler/tests/prop_estimators.rs

crates/profiler/tests/prop_estimators.rs:
