/root/repo/target/debug/deps/fig5_scalability-687c4d9f1b5f9db8.d: crates/bench/src/bin/fig5_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scalability-687c4d9f1b5f9db8.rmeta: crates/bench/src/bin/fig5_scalability.rs Cargo.toml

crates/bench/src/bin/fig5_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
