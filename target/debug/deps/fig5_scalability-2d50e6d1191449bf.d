/root/repo/target/debug/deps/fig5_scalability-2d50e6d1191449bf.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/debug/deps/fig5_scalability-2d50e6d1191449bf: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
