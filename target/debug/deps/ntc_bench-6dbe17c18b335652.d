/root/repo/target/debug/deps/ntc_bench-6dbe17c18b335652.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

/root/repo/target/debug/deps/ntc_bench-6dbe17c18b335652: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
