/root/repo/target/debug/deps/fig5_scalability-fbb852efeaef5d06.d: crates/bench/src/bin/fig5_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scalability-fbb852efeaef5d06.rmeta: crates/bench/src/bin/fig5_scalability.rs Cargo.toml

crates/bench/src/bin/fig5_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
