/root/repo/target/debug/deps/fig7_offpeak_extension-f755e3df7e884bea.d: crates/bench/src/bin/fig7_offpeak_extension.rs

/root/repo/target/debug/deps/fig7_offpeak_extension-f755e3df7e884bea: crates/bench/src/bin/fig7_offpeak_extension.rs

crates/bench/src/bin/fig7_offpeak_extension.rs:
