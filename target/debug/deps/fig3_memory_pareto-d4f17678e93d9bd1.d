/root/repo/target/debug/deps/fig3_memory_pareto-d4f17678e93d9bd1.d: crates/bench/src/bin/fig3_memory_pareto.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_memory_pareto-d4f17678e93d9bd1.rmeta: crates/bench/src/bin/fig3_memory_pareto.rs Cargo.toml

crates/bench/src/bin/fig3_memory_pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
