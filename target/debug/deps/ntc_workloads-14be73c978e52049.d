/root/repo/target/debug/deps/ntc_workloads-14be73c978e52049.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs Cargo.toml

/root/repo/target/debug/deps/libntc_workloads-14be73c978e52049.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
