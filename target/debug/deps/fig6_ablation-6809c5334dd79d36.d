/root/repo/target/debug/deps/fig6_ablation-6809c5334dd79d36.d: crates/bench/src/bin/fig6_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_ablation-6809c5334dd79d36.rmeta: crates/bench/src/bin/fig6_ablation.rs Cargo.toml

crates/bench/src/bin/fig6_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
