/root/repo/target/debug/deps/tab1_cost_comparison-9bb9c502a0514ea1.d: crates/bench/src/bin/tab1_cost_comparison.rs

/root/repo/target/debug/deps/tab1_cost_comparison-9bb9c502a0514ea1: crates/bench/src/bin/tab1_cost_comparison.rs

crates/bench/src/bin/tab1_cost_comparison.rs:
