/root/repo/target/debug/deps/ntc_net-792af3a5c23ebcd4.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libntc_net-792af3a5c23ebcd4.rmeta: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
