/root/repo/target/debug/deps/engine_dispatch-4eba4dca4c84cdb3.d: crates/bench/benches/engine_dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libengine_dispatch-4eba4dca4c84cdb3.rmeta: crates/bench/benches/engine_dispatch.rs Cargo.toml

crates/bench/benches/engine_dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
