/root/repo/target/debug/deps/fig6_ablation-25ac374fdf50e98b.d: crates/bench/src/bin/fig6_ablation.rs

/root/repo/target/debug/deps/fig6_ablation-25ac374fdf50e98b: crates/bench/src/bin/fig6_ablation.rs

crates/bench/src/bin/fig6_ablation.rs:
