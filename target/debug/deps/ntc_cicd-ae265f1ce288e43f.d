/root/repo/target/debug/deps/ntc_cicd-ae265f1ce288e43f.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/debug/deps/ntc_cicd-ae265f1ce288e43f: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
