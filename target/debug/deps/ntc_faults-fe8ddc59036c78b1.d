/root/repo/target/debug/deps/ntc_faults-fe8ddc59036c78b1.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/debug/deps/libntc_faults-fe8ddc59036c78b1.rmeta: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
