/root/repo/target/debug/deps/tab3_demand_estimation-119a7eb79904bfb1.d: crates/bench/src/bin/tab3_demand_estimation.rs

/root/repo/target/debug/deps/tab3_demand_estimation-119a7eb79904bfb1: crates/bench/src/bin/tab3_demand_estimation.rs

crates/bench/src/bin/tab3_demand_estimation.rs:
