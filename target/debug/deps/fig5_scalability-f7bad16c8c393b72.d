/root/repo/target/debug/deps/fig5_scalability-f7bad16c8c393b72.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/debug/deps/fig5_scalability-f7bad16c8c393b72: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
