/root/repo/target/debug/deps/tab2_partition_quality-8899d2da3a7361c5.d: crates/bench/src/bin/tab2_partition_quality.rs

/root/repo/target/debug/deps/tab2_partition_quality-8899d2da3a7361c5: crates/bench/src/bin/tab2_partition_quality.rs

crates/bench/src/bin/tab2_partition_quality.rs:
