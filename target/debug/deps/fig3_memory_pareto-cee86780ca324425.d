/root/repo/target/debug/deps/fig3_memory_pareto-cee86780ca324425.d: crates/bench/src/bin/fig3_memory_pareto.rs

/root/repo/target/debug/deps/fig3_memory_pareto-cee86780ca324425: crates/bench/src/bin/fig3_memory_pareto.rs

crates/bench/src/bin/fig3_memory_pareto.rs:
