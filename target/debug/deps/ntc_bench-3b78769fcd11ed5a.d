/root/repo/target/debug/deps/ntc_bench-3b78769fcd11ed5a.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/debug/deps/libntc_bench-3b78769fcd11ed5a.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
