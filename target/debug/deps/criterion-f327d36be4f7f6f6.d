/root/repo/target/debug/deps/criterion-f327d36be4f7f6f6.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f327d36be4f7f6f6.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f327d36be4f7f6f6.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
