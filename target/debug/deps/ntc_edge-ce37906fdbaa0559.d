/root/repo/target/debug/deps/ntc_edge-ce37906fdbaa0559.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/debug/deps/ntc_edge-ce37906fdbaa0559: crates/edge/src/lib.rs crates/edge/src/fleet.rs

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
