/root/repo/target/debug/deps/rand-c51353fbd3edc796.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c51353fbd3edc796.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c51353fbd3edc796.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
