/root/repo/target/debug/deps/ntc_profiler-3cc9e047de89ab6d.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/ntc_profiler-3cc9e047de89ab6d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
