/root/repo/target/debug/deps/prop_fleet-59ab46322182f4af.d: crates/edge/tests/prop_fleet.rs

/root/repo/target/debug/deps/prop_fleet-59ab46322182f4af: crates/edge/tests/prop_fleet.rs

crates/edge/tests/prop_fleet.rs:
