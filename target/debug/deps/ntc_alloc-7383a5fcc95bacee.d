/root/repo/target/debug/deps/ntc_alloc-7383a5fcc95bacee.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/debug/deps/libntc_alloc-7383a5fcc95bacee.rlib: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/debug/deps/libntc_alloc-7383a5fcc95bacee.rmeta: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
