/root/repo/target/debug/deps/serde_json-bbafb8bb26105685.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-bbafb8bb26105685.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-bbafb8bb26105685.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
