/root/repo/target/debug/deps/tab5_e2e_policies-52be868671ea9c04.d: crates/bench/src/bin/tab5_e2e_policies.rs

/root/repo/target/debug/deps/tab5_e2e_policies-52be868671ea9c04: crates/bench/src/bin/tab5_e2e_policies.rs

crates/bench/src/bin/tab5_e2e_policies.rs:
