/root/repo/target/debug/deps/ntc_cicd-fa9b2a2c22bc6f27.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libntc_cicd-fa9b2a2c22bc6f27.rmeta: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs Cargo.toml

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
