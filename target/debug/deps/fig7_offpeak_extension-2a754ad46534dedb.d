/root/repo/target/debug/deps/fig7_offpeak_extension-2a754ad46534dedb.d: crates/bench/src/bin/fig7_offpeak_extension.rs

/root/repo/target/debug/deps/fig7_offpeak_extension-2a754ad46534dedb: crates/bench/src/bin/fig7_offpeak_extension.rs

crates/bench/src/bin/fig7_offpeak_extension.rs:
