/root/repo/target/debug/deps/ntc-bb9968def822b225.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libntc-bb9968def822b225.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
