/root/repo/target/debug/deps/ntc_offload-db493caea994b0d5.d: src/lib.rs

/root/repo/target/debug/deps/libntc_offload-db493caea994b0d5.rlib: src/lib.rs

/root/repo/target/debug/deps/libntc_offload-db493caea994b0d5.rmeta: src/lib.rs

src/lib.rs:
