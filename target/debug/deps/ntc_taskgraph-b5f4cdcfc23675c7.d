/root/repo/target/debug/deps/ntc_taskgraph-b5f4cdcfc23675c7.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/debug/deps/libntc_taskgraph-b5f4cdcfc23675c7.rlib: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/debug/deps/libntc_taskgraph-b5f4cdcfc23675c7.rmeta: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
