/root/repo/target/debug/deps/ntc_serverless-43f381539cf00433.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/debug/deps/ntc_serverless-43f381539cf00433: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
