/root/repo/target/debug/deps/bench_kernel_baseline-7db44f9d7a652344.d: crates/bench/src/bin/bench_kernel_baseline.rs

/root/repo/target/debug/deps/bench_kernel_baseline-7db44f9d7a652344: crates/bench/src/bin/bench_kernel_baseline.rs

crates/bench/src/bin/bench_kernel_baseline.rs:
