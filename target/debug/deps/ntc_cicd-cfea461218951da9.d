/root/repo/target/debug/deps/ntc_cicd-cfea461218951da9.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/debug/deps/libntc_cicd-cfea461218951da9.rmeta: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
