/root/repo/target/debug/deps/fig1_latency_crossover-78c21b4826f28f7c.d: crates/bench/src/bin/fig1_latency_crossover.rs

/root/repo/target/debug/deps/fig1_latency_crossover-78c21b4826f28f7c: crates/bench/src/bin/fig1_latency_crossover.rs

crates/bench/src/bin/fig1_latency_crossover.rs:
