/root/repo/target/debug/deps/fig2_cold_start-9848cc2b760b1740.d: crates/bench/src/bin/fig2_cold_start.rs

/root/repo/target/debug/deps/fig2_cold_start-9848cc2b760b1740: crates/bench/src/bin/fig2_cold_start.rs

crates/bench/src/bin/fig2_cold_start.rs:
