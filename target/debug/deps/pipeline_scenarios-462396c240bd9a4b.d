/root/repo/target/debug/deps/pipeline_scenarios-462396c240bd9a4b.d: crates/cicd/tests/pipeline_scenarios.rs

/root/repo/target/debug/deps/pipeline_scenarios-462396c240bd9a4b: crates/cicd/tests/pipeline_scenarios.rs

crates/cicd/tests/pipeline_scenarios.rs:
