/root/repo/target/debug/deps/fig2_cold_start-743d4558463d028c.d: crates/bench/src/bin/fig2_cold_start.rs

/root/repo/target/debug/deps/fig2_cold_start-743d4558463d028c: crates/bench/src/bin/fig2_cold_start.rs

crates/bench/src/bin/fig2_cold_start.rs:
