/root/repo/target/debug/deps/bench_dispatch_baseline-f876706cc382b033.d: crates/bench/src/bin/bench_dispatch_baseline.rs

/root/repo/target/debug/deps/bench_dispatch_baseline-f876706cc382b033: crates/bench/src/bin/bench_dispatch_baseline.rs

crates/bench/src/bin/bench_dispatch_baseline.rs:
