/root/repo/target/debug/deps/ntc_taskgraph-5291434507be2586.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/debug/deps/ntc_taskgraph-5291434507be2586: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
