/root/repo/target/debug/deps/fig9_fault_tolerance-1f663199afdaf325.d: crates/bench/src/bin/fig9_fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_fault_tolerance-1f663199afdaf325.rmeta: crates/bench/src/bin/fig9_fault_tolerance.rs Cargo.toml

crates/bench/src/bin/fig9_fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
