/root/repo/target/debug/deps/tab5_e2e_policies-fd542ca951c378b3.d: crates/bench/src/bin/tab5_e2e_policies.rs

/root/repo/target/debug/deps/tab5_e2e_policies-fd542ca951c378b3: crates/bench/src/bin/tab5_e2e_policies.rs

crates/bench/src/bin/tab5_e2e_policies.rs:
