/root/repo/target/debug/deps/ntc_simcore-85262d7d0a740272.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libntc_simcore-85262d7d0a740272.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
