/root/repo/target/debug/deps/engine_scenarios-58a5550816222d17.d: crates/core/tests/engine_scenarios.rs

/root/repo/target/debug/deps/engine_scenarios-58a5550816222d17: crates/core/tests/engine_scenarios.rs

crates/core/tests/engine_scenarios.rs:
