/root/repo/target/debug/deps/ntc_offload-18c5c4c3b0ab2623.d: src/lib.rs

/root/repo/target/debug/deps/libntc_offload-18c5c4c3b0ab2623.rmeta: src/lib.rs

src/lib.rs:
