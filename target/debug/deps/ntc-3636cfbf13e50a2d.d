/root/repo/target/debug/deps/ntc-3636cfbf13e50a2d.d: src/main.rs

/root/repo/target/debug/deps/ntc-3636cfbf13e50a2d: src/main.rs

src/main.rs:
