/root/repo/target/debug/deps/site_conformance-26242f92f25c6c12.d: crates/core/tests/site_conformance.rs

/root/repo/target/debug/deps/site_conformance-26242f92f25c6c12: crates/core/tests/site_conformance.rs

crates/core/tests/site_conformance.rs:
