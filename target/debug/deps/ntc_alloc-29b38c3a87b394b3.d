/root/repo/target/debug/deps/ntc_alloc-29b38c3a87b394b3.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/debug/deps/libntc_alloc-29b38c3a87b394b3.rmeta: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
