/root/repo/target/debug/deps/ntc_edge-d0aacc7eb6cea4e6.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/debug/deps/libntc_edge-d0aacc7eb6cea4e6.rmeta: crates/edge/src/lib.rs crates/edge/src/fleet.rs

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
