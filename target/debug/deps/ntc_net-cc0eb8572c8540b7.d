/root/repo/target/debug/deps/ntc_net-cc0eb8572c8540b7.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libntc_net-cc0eb8572c8540b7.rlib: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libntc_net-cc0eb8572c8540b7.rmeta: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
