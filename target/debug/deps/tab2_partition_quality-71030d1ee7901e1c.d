/root/repo/target/debug/deps/tab2_partition_quality-71030d1ee7901e1c.d: crates/bench/src/bin/tab2_partition_quality.rs

/root/repo/target/debug/deps/tab2_partition_quality-71030d1ee7901e1c: crates/bench/src/bin/tab2_partition_quality.rs

crates/bench/src/bin/tab2_partition_quality.rs:
