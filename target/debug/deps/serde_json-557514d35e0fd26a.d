/root/repo/target/debug/deps/serde_json-557514d35e0fd26a.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-557514d35e0fd26a.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
