/root/repo/target/debug/deps/ntc_bench-2224bb440d271d01.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/debug/deps/ntc_bench-2224bb440d271d01: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
