/root/repo/target/debug/deps/fig3_memory_pareto-cf8319f4bee6fa19.d: crates/bench/src/bin/fig3_memory_pareto.rs

/root/repo/target/debug/deps/fig3_memory_pareto-cf8319f4bee6fa19: crates/bench/src/bin/fig3_memory_pareto.rs

crates/bench/src/bin/fig3_memory_pareto.rs:
