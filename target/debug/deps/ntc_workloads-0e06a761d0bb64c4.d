/root/repo/target/debug/deps/ntc_workloads-0e06a761d0bb64c4.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/debug/deps/libntc_workloads-0e06a761d0bb64c4.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
