/root/repo/target/debug/deps/ntc_taskgraph-979d3c7a0b8358d3.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libntc_taskgraph-979d3c7a0b8358d3.rmeta: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs Cargo.toml

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
