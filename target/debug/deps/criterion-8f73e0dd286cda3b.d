/root/repo/target/debug/deps/criterion-8f73e0dd286cda3b.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8f73e0dd286cda3b.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
