/root/repo/target/debug/deps/ntc_alloc-a31b66d67bdd331e.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/debug/deps/ntc_alloc-a31b66d67bdd331e: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
