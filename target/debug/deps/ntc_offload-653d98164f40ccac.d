/root/repo/target/debug/deps/ntc_offload-653d98164f40ccac.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libntc_offload-653d98164f40ccac.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
