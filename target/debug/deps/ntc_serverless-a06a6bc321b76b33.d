/root/repo/target/debug/deps/ntc_serverless-a06a6bc321b76b33.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/debug/deps/libntc_serverless-a06a6bc321b76b33.rmeta: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
