/root/repo/target/debug/deps/fig4_deadline_batching-3ed8d613b759b5a9.d: crates/bench/src/bin/fig4_deadline_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_deadline_batching-3ed8d613b759b5a9.rmeta: crates/bench/src/bin/fig4_deadline_batching.rs Cargo.toml

crates/bench/src/bin/fig4_deadline_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
