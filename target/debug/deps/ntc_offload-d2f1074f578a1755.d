/root/repo/target/debug/deps/ntc_offload-d2f1074f578a1755.d: src/lib.rs

/root/repo/target/debug/deps/ntc_offload-d2f1074f578a1755: src/lib.rs

src/lib.rs:
