/root/repo/target/debug/deps/fig4_deadline_batching-ba2c77ce5b4a8cbc.d: crates/bench/src/bin/fig4_deadline_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_deadline_batching-ba2c77ce5b4a8cbc.rmeta: crates/bench/src/bin/fig4_deadline_batching.rs Cargo.toml

crates/bench/src/bin/fig4_deadline_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
