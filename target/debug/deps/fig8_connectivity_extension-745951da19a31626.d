/root/repo/target/debug/deps/fig8_connectivity_extension-745951da19a31626.d: crates/bench/src/bin/fig8_connectivity_extension.rs

/root/repo/target/debug/deps/fig8_connectivity_extension-745951da19a31626: crates/bench/src/bin/fig8_connectivity_extension.rs

crates/bench/src/bin/fig8_connectivity_extension.rs:
