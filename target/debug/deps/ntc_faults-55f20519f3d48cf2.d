/root/repo/target/debug/deps/ntc_faults-55f20519f3d48cf2.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs Cargo.toml

/root/repo/target/debug/deps/libntc_faults-55f20519f3d48cf2.rmeta: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
