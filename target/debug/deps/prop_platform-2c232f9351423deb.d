/root/repo/target/debug/deps/prop_platform-2c232f9351423deb.d: crates/serverless/tests/prop_platform.rs

/root/repo/target/debug/deps/prop_platform-2c232f9351423deb: crates/serverless/tests/prop_platform.rs

crates/serverless/tests/prop_platform.rs:
