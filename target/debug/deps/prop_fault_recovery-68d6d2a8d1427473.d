/root/repo/target/debug/deps/prop_fault_recovery-68d6d2a8d1427473.d: crates/core/tests/prop_fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libprop_fault_recovery-68d6d2a8d1427473.rmeta: crates/core/tests/prop_fault_recovery.rs Cargo.toml

crates/core/tests/prop_fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
