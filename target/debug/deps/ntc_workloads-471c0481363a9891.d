/root/repo/target/debug/deps/ntc_workloads-471c0481363a9891.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/debug/deps/libntc_workloads-471c0481363a9891.rlib: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/debug/deps/libntc_workloads-471c0481363a9891.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
