/root/repo/target/debug/deps/pipeline_scenarios-c2b9f17556147f29.d: crates/cicd/tests/pipeline_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_scenarios-c2b9f17556147f29.rmeta: crates/cicd/tests/pipeline_scenarios.rs Cargo.toml

crates/cicd/tests/pipeline_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
