/root/repo/target/debug/deps/determinism-5bf9b061305420e5.d: crates/core/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-5bf9b061305420e5.rmeta: crates/core/tests/determinism.rs Cargo.toml

crates/core/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
