/root/repo/target/debug/examples/quickstart-77c18f31ae299e01.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-77c18f31ae299e01: examples/quickstart.rs

examples/quickstart.rs:
