/root/repo/target/debug/examples/nightly_reports-af62c37050a470a4.d: examples/nightly_reports.rs

/root/repo/target/debug/examples/nightly_reports-af62c37050a470a4: examples/nightly_reports.rs

examples/nightly_reports.rs:
