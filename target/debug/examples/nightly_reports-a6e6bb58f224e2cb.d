/root/repo/target/debug/examples/nightly_reports-a6e6bb58f224e2cb.d: examples/nightly_reports.rs Cargo.toml

/root/repo/target/debug/examples/libnightly_reports-a6e6bb58f224e2cb.rmeta: examples/nightly_reports.rs Cargo.toml

examples/nightly_reports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
