/root/repo/target/debug/examples/commuter_day-b0006a6026855dc3.d: examples/commuter_day.rs

/root/repo/target/debug/examples/commuter_day-b0006a6026855dc3: examples/commuter_day.rs

examples/commuter_day.rs:
