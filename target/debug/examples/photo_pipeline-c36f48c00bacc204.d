/root/repo/target/debug/examples/photo_pipeline-c36f48c00bacc204.d: examples/photo_pipeline.rs

/root/repo/target/debug/examples/photo_pipeline-c36f48c00bacc204: examples/photo_pipeline.rs

examples/photo_pipeline.rs:
