/root/repo/target/debug/examples/commuter_day-96515bb7a318af2d.d: examples/commuter_day.rs Cargo.toml

/root/repo/target/debug/examples/libcommuter_day-96515bb7a318af2d.rmeta: examples/commuter_day.rs Cargo.toml

examples/commuter_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
