/root/repo/target/debug/examples/quickstart-0925b3884c829254.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0925b3884c829254: examples/quickstart.rs

examples/quickstart.rs:
