/root/repo/target/debug/examples/cicd_rollout-d7402d88b2f2690d.d: examples/cicd_rollout.rs Cargo.toml

/root/repo/target/debug/examples/libcicd_rollout-d7402d88b2f2690d.rmeta: examples/cicd_rollout.rs Cargo.toml

examples/cicd_rollout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
