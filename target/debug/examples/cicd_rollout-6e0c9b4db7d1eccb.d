/root/repo/target/debug/examples/cicd_rollout-6e0c9b4db7d1eccb.d: examples/cicd_rollout.rs

/root/repo/target/debug/examples/cicd_rollout-6e0c9b4db7d1eccb: examples/cicd_rollout.rs

examples/cicd_rollout.rs:
