/root/repo/target/debug/examples/photo_pipeline-657517f9dd4210f3.d: examples/photo_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libphoto_pipeline-657517f9dd4210f3.rmeta: examples/photo_pipeline.rs Cargo.toml

examples/photo_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
