/root/repo/target/debug/examples/photo_pipeline-de1fc944db91cbc9.d: examples/photo_pipeline.rs

/root/repo/target/debug/examples/photo_pipeline-de1fc944db91cbc9: examples/photo_pipeline.rs

examples/photo_pipeline.rs:
