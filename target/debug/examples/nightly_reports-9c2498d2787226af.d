/root/repo/target/debug/examples/nightly_reports-9c2498d2787226af.d: examples/nightly_reports.rs

/root/repo/target/debug/examples/nightly_reports-9c2498d2787226af: examples/nightly_reports.rs

examples/nightly_reports.rs:
