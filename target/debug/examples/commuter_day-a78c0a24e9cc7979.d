/root/repo/target/debug/examples/commuter_day-a78c0a24e9cc7979.d: examples/commuter_day.rs

/root/repo/target/debug/examples/commuter_day-a78c0a24e9cc7979: examples/commuter_day.rs

examples/commuter_day.rs:
