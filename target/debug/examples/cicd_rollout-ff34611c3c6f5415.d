/root/repo/target/debug/examples/cicd_rollout-ff34611c3c6f5415.d: examples/cicd_rollout.rs

/root/repo/target/debug/examples/cicd_rollout-ff34611c3c6f5415: examples/cicd_rollout.rs

examples/cicd_rollout.rs:
