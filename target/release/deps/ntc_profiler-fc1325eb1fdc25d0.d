/root/repo/target/release/deps/ntc_profiler-fc1325eb1fdc25d0.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/release/deps/ntc_profiler-fc1325eb1fdc25d0: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
