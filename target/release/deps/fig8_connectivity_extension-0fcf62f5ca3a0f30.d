/root/repo/target/release/deps/fig8_connectivity_extension-0fcf62f5ca3a0f30.d: crates/bench/src/bin/fig8_connectivity_extension.rs

/root/repo/target/release/deps/fig8_connectivity_extension-0fcf62f5ca3a0f30: crates/bench/src/bin/fig8_connectivity_extension.rs

crates/bench/src/bin/fig8_connectivity_extension.rs:
