/root/repo/target/release/deps/ntc_edge-b06638b34254723f.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/release/deps/libntc_edge-b06638b34254723f.rlib: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/release/deps/libntc_edge-b06638b34254723f.rmeta: crates/edge/src/lib.rs crates/edge/src/fleet.rs

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
