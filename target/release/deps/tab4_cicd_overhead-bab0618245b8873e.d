/root/repo/target/release/deps/tab4_cicd_overhead-bab0618245b8873e.d: crates/bench/src/bin/tab4_cicd_overhead.rs

/root/repo/target/release/deps/tab4_cicd_overhead-bab0618245b8873e: crates/bench/src/bin/tab4_cicd_overhead.rs

crates/bench/src/bin/tab4_cicd_overhead.rs:
