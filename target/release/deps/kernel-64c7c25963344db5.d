/root/repo/target/release/deps/kernel-64c7c25963344db5.d: crates/bench/benches/kernel.rs

/root/repo/target/release/deps/kernel-64c7c25963344db5: crates/bench/benches/kernel.rs

crates/bench/benches/kernel.rs:
