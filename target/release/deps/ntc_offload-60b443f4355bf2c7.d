/root/repo/target/release/deps/ntc_offload-60b443f4355bf2c7.d: src/lib.rs

/root/repo/target/release/deps/libntc_offload-60b443f4355bf2c7.rlib: src/lib.rs

/root/repo/target/release/deps/libntc_offload-60b443f4355bf2c7.rmeta: src/lib.rs

src/lib.rs:
