/root/repo/target/release/deps/determinism-7881454836c1596d.d: crates/core/tests/determinism.rs

/root/repo/target/release/deps/determinism-7881454836c1596d: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
