/root/repo/target/release/deps/ntc-8ebb0c8f34376b5e.d: src/main.rs

/root/repo/target/release/deps/ntc-8ebb0c8f34376b5e: src/main.rs

src/main.rs:
