/root/repo/target/release/deps/tab2_partition_quality-8e1d6302ed23d371.d: crates/bench/src/bin/tab2_partition_quality.rs

/root/repo/target/release/deps/tab2_partition_quality-8e1d6302ed23d371: crates/bench/src/bin/tab2_partition_quality.rs

crates/bench/src/bin/tab2_partition_quality.rs:
