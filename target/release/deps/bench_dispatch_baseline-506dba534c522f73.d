/root/repo/target/release/deps/bench_dispatch_baseline-506dba534c522f73.d: crates/bench/src/bin/bench_dispatch_baseline.rs

/root/repo/target/release/deps/bench_dispatch_baseline-506dba534c522f73: crates/bench/src/bin/bench_dispatch_baseline.rs

crates/bench/src/bin/bench_dispatch_baseline.rs:
