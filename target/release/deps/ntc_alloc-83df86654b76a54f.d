/root/repo/target/release/deps/ntc_alloc-83df86654b76a54f.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/release/deps/ntc_alloc-83df86654b76a54f: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
