/root/repo/target/release/deps/fig7_offpeak_extension-a3a729f88d8e81ed.d: crates/bench/src/bin/fig7_offpeak_extension.rs

/root/repo/target/release/deps/fig7_offpeak_extension-a3a729f88d8e81ed: crates/bench/src/bin/fig7_offpeak_extension.rs

crates/bench/src/bin/fig7_offpeak_extension.rs:
