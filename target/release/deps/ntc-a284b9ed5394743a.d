/root/repo/target/release/deps/ntc-a284b9ed5394743a.d: src/main.rs

/root/repo/target/release/deps/ntc-a284b9ed5394743a: src/main.rs

src/main.rs:
