/root/repo/target/release/deps/ntc_bench-f1dc4471c78f4abb.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

/root/repo/target/release/deps/libntc_bench-f1dc4471c78f4abb.rlib: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

/root/repo/target/release/deps/libntc_bench-f1dc4471c78f4abb.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
