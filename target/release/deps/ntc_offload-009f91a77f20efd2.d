/root/repo/target/release/deps/ntc_offload-009f91a77f20efd2.d: src/lib.rs

/root/repo/target/release/deps/libntc_offload-009f91a77f20efd2.rlib: src/lib.rs

/root/repo/target/release/deps/libntc_offload-009f91a77f20efd2.rmeta: src/lib.rs

src/lib.rs:
