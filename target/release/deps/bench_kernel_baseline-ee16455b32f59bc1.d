/root/repo/target/release/deps/bench_kernel_baseline-ee16455b32f59bc1.d: crates/bench/src/bin/bench_kernel_baseline.rs

/root/repo/target/release/deps/bench_kernel_baseline-ee16455b32f59bc1: crates/bench/src/bin/bench_kernel_baseline.rs

crates/bench/src/bin/bench_kernel_baseline.rs:
