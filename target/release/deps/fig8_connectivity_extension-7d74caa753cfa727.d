/root/repo/target/release/deps/fig8_connectivity_extension-7d74caa753cfa727.d: crates/bench/src/bin/fig8_connectivity_extension.rs

/root/repo/target/release/deps/fig8_connectivity_extension-7d74caa753cfa727: crates/bench/src/bin/fig8_connectivity_extension.rs

crates/bench/src/bin/fig8_connectivity_extension.rs:
