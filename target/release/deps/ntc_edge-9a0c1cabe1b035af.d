/root/repo/target/release/deps/ntc_edge-9a0c1cabe1b035af.d: crates/edge/src/lib.rs crates/edge/src/fleet.rs

/root/repo/target/release/deps/ntc_edge-9a0c1cabe1b035af: crates/edge/src/lib.rs crates/edge/src/fleet.rs

crates/edge/src/lib.rs:
crates/edge/src/fleet.rs:
