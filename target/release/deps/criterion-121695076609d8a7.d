/root/repo/target/release/deps/criterion-121695076609d8a7.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-121695076609d8a7.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-121695076609d8a7.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
