/root/repo/target/release/deps/ntc_partition-1d6b07a93846f0a1.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/release/deps/libntc_partition-1d6b07a93846f0a1.rlib: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/release/deps/libntc_partition-1d6b07a93846f0a1.rmeta: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
