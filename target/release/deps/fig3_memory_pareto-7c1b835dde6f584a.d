/root/repo/target/release/deps/fig3_memory_pareto-7c1b835dde6f584a.d: crates/bench/src/bin/fig3_memory_pareto.rs

/root/repo/target/release/deps/fig3_memory_pareto-7c1b835dde6f584a: crates/bench/src/bin/fig3_memory_pareto.rs

crates/bench/src/bin/fig3_memory_pareto.rs:
