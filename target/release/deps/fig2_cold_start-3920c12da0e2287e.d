/root/repo/target/release/deps/fig2_cold_start-3920c12da0e2287e.d: crates/bench/src/bin/fig2_cold_start.rs

/root/repo/target/release/deps/fig2_cold_start-3920c12da0e2287e: crates/bench/src/bin/fig2_cold_start.rs

crates/bench/src/bin/fig2_cold_start.rs:
