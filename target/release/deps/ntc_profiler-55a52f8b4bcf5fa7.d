/root/repo/target/release/deps/ntc_profiler-55a52f8b4bcf5fa7.d: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/release/deps/libntc_profiler-55a52f8b4bcf5fa7.rlib: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

/root/repo/target/release/deps/libntc_profiler-55a52f8b4bcf5fa7.rmeta: crates/profiler/src/lib.rs crates/profiler/src/accuracy.rs crates/profiler/src/drift.rs crates/profiler/src/estimator.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/accuracy.rs:
crates/profiler/src/drift.rs:
crates/profiler/src/estimator.rs:
crates/profiler/src/profile.rs:
