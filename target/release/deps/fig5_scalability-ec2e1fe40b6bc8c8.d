/root/repo/target/release/deps/fig5_scalability-ec2e1fe40b6bc8c8.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/release/deps/fig5_scalability-ec2e1fe40b6bc8c8: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
