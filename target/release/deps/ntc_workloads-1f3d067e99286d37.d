/root/repo/target/release/deps/ntc_workloads-1f3d067e99286d37.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/release/deps/libntc_workloads-1f3d067e99286d37.rlib: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/release/deps/libntc_workloads-1f3d067e99286d37.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
