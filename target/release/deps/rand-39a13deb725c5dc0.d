/root/repo/target/release/deps/rand-39a13deb725c5dc0.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-39a13deb725c5dc0.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-39a13deb725c5dc0.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
