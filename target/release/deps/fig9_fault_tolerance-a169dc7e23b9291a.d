/root/repo/target/release/deps/fig9_fault_tolerance-a169dc7e23b9291a.d: crates/bench/src/bin/fig9_fault_tolerance.rs

/root/repo/target/release/deps/fig9_fault_tolerance-a169dc7e23b9291a: crates/bench/src/bin/fig9_fault_tolerance.rs

crates/bench/src/bin/fig9_fault_tolerance.rs:
