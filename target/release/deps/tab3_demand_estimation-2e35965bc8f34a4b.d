/root/repo/target/release/deps/tab3_demand_estimation-2e35965bc8f34a4b.d: crates/bench/src/bin/tab3_demand_estimation.rs

/root/repo/target/release/deps/tab3_demand_estimation-2e35965bc8f34a4b: crates/bench/src/bin/tab3_demand_estimation.rs

crates/bench/src/bin/tab3_demand_estimation.rs:
