/root/repo/target/release/deps/prop_event_queue-6795827c33e5fbf6.d: crates/simcore/tests/prop_event_queue.rs

/root/repo/target/release/deps/prop_event_queue-6795827c33e5fbf6: crates/simcore/tests/prop_event_queue.rs

crates/simcore/tests/prop_event_queue.rs:
