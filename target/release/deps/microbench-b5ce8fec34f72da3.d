/root/repo/target/release/deps/microbench-b5ce8fec34f72da3.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-b5ce8fec34f72da3: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
