/root/repo/target/release/deps/ntc_workloads-19f5773af7fea841.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

/root/repo/target/release/deps/ntc_workloads-19f5773af7fea841: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/arrivals.rs crates/workloads/src/jobs.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/jobs.rs:
