/root/repo/target/release/deps/fig5_scalability-69255f73557202a6.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/release/deps/fig5_scalability-69255f73557202a6: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
