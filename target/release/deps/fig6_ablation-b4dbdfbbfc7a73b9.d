/root/repo/target/release/deps/fig6_ablation-b4dbdfbbfc7a73b9.d: crates/bench/src/bin/fig6_ablation.rs

/root/repo/target/release/deps/fig6_ablation-b4dbdfbbfc7a73b9: crates/bench/src/bin/fig6_ablation.rs

crates/bench/src/bin/fig6_ablation.rs:
