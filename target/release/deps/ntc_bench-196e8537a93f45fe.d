/root/repo/target/release/deps/ntc_bench-196e8537a93f45fe.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/release/deps/ntc_bench-196e8537a93f45fe: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
