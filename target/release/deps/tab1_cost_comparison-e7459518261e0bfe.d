/root/repo/target/release/deps/tab1_cost_comparison-e7459518261e0bfe.d: crates/bench/src/bin/tab1_cost_comparison.rs

/root/repo/target/release/deps/tab1_cost_comparison-e7459518261e0bfe: crates/bench/src/bin/tab1_cost_comparison.rs

crates/bench/src/bin/tab1_cost_comparison.rs:
