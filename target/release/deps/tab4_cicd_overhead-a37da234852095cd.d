/root/repo/target/release/deps/tab4_cicd_overhead-a37da234852095cd.d: crates/bench/src/bin/tab4_cicd_overhead.rs

/root/repo/target/release/deps/tab4_cicd_overhead-a37da234852095cd: crates/bench/src/bin/tab4_cicd_overhead.rs

crates/bench/src/bin/tab4_cicd_overhead.rs:
