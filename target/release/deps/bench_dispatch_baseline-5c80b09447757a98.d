/root/repo/target/release/deps/bench_dispatch_baseline-5c80b09447757a98.d: crates/bench/src/bin/bench_dispatch_baseline.rs

/root/repo/target/release/deps/bench_dispatch_baseline-5c80b09447757a98: crates/bench/src/bin/bench_dispatch_baseline.rs

crates/bench/src/bin/bench_dispatch_baseline.rs:
