/root/repo/target/release/deps/fig4_deadline_batching-0ab8a2b4e1736f72.d: crates/bench/src/bin/fig4_deadline_batching.rs

/root/repo/target/release/deps/fig4_deadline_batching-0ab8a2b4e1736f72: crates/bench/src/bin/fig4_deadline_batching.rs

crates/bench/src/bin/fig4_deadline_batching.rs:
