/root/repo/target/release/deps/fig1_latency_crossover-cce144507222326f.d: crates/bench/src/bin/fig1_latency_crossover.rs

/root/repo/target/release/deps/fig1_latency_crossover-cce144507222326f: crates/bench/src/bin/fig1_latency_crossover.rs

crates/bench/src/bin/fig1_latency_crossover.rs:
