/root/repo/target/release/deps/tab1_cost_comparison-4033d66eddf0970f.d: crates/bench/src/bin/tab1_cost_comparison.rs

/root/repo/target/release/deps/tab1_cost_comparison-4033d66eddf0970f: crates/bench/src/bin/tab1_cost_comparison.rs

crates/bench/src/bin/tab1_cost_comparison.rs:
