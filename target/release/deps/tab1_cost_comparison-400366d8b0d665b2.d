/root/repo/target/release/deps/tab1_cost_comparison-400366d8b0d665b2.d: crates/bench/src/bin/tab1_cost_comparison.rs

/root/repo/target/release/deps/tab1_cost_comparison-400366d8b0d665b2: crates/bench/src/bin/tab1_cost_comparison.rs

crates/bench/src/bin/tab1_cost_comparison.rs:
