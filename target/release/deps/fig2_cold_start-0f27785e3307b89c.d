/root/repo/target/release/deps/fig2_cold_start-0f27785e3307b89c.d: crates/bench/src/bin/fig2_cold_start.rs

/root/repo/target/release/deps/fig2_cold_start-0f27785e3307b89c: crates/bench/src/bin/fig2_cold_start.rs

crates/bench/src/bin/fig2_cold_start.rs:
