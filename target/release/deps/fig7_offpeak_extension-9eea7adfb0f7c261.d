/root/repo/target/release/deps/fig7_offpeak_extension-9eea7adfb0f7c261.d: crates/bench/src/bin/fig7_offpeak_extension.rs

/root/repo/target/release/deps/fig7_offpeak_extension-9eea7adfb0f7c261: crates/bench/src/bin/fig7_offpeak_extension.rs

crates/bench/src/bin/fig7_offpeak_extension.rs:
