/root/repo/target/release/deps/ntc_offload-1144dd314b048443.d: src/lib.rs

/root/repo/target/release/deps/ntc_offload-1144dd314b048443: src/lib.rs

src/lib.rs:
