/root/repo/target/release/deps/tab2_partition_quality-228b33a9303248e0.d: crates/bench/src/bin/tab2_partition_quality.rs

/root/repo/target/release/deps/tab2_partition_quality-228b33a9303248e0: crates/bench/src/bin/tab2_partition_quality.rs

crates/bench/src/bin/tab2_partition_quality.rs:
