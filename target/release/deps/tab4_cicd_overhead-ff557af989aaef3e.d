/root/repo/target/release/deps/tab4_cicd_overhead-ff557af989aaef3e.d: crates/bench/src/bin/tab4_cicd_overhead.rs

/root/repo/target/release/deps/tab4_cicd_overhead-ff557af989aaef3e: crates/bench/src/bin/tab4_cicd_overhead.rs

crates/bench/src/bin/tab4_cicd_overhead.rs:
