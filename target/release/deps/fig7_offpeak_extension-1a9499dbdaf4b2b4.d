/root/repo/target/release/deps/fig7_offpeak_extension-1a9499dbdaf4b2b4.d: crates/bench/src/bin/fig7_offpeak_extension.rs

/root/repo/target/release/deps/fig7_offpeak_extension-1a9499dbdaf4b2b4: crates/bench/src/bin/fig7_offpeak_extension.rs

crates/bench/src/bin/fig7_offpeak_extension.rs:
