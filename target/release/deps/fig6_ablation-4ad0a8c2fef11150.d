/root/repo/target/release/deps/fig6_ablation-4ad0a8c2fef11150.d: crates/bench/src/bin/fig6_ablation.rs

/root/repo/target/release/deps/fig6_ablation-4ad0a8c2fef11150: crates/bench/src/bin/fig6_ablation.rs

crates/bench/src/bin/fig6_ablation.rs:
