/root/repo/target/release/deps/ntc_serverless-609d55e0f0065612.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/release/deps/libntc_serverless-609d55e0f0065612.rlib: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/release/deps/libntc_serverless-609d55e0f0065612.rmeta: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
