/root/repo/target/release/deps/ntc_taskgraph-0cf69c559707f30b.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/release/deps/ntc_taskgraph-0cf69c559707f30b: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
