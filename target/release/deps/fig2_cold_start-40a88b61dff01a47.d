/root/repo/target/release/deps/fig2_cold_start-40a88b61dff01a47.d: crates/bench/src/bin/fig2_cold_start.rs

/root/repo/target/release/deps/fig2_cold_start-40a88b61dff01a47: crates/bench/src/bin/fig2_cold_start.rs

crates/bench/src/bin/fig2_cold_start.rs:
