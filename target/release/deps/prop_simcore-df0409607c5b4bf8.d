/root/repo/target/release/deps/prop_simcore-df0409607c5b4bf8.d: crates/simcore/tests/prop_simcore.rs

/root/repo/target/release/deps/prop_simcore-df0409607c5b4bf8: crates/simcore/tests/prop_simcore.rs

crates/simcore/tests/prop_simcore.rs:
