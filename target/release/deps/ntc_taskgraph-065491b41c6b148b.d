/root/repo/target/release/deps/ntc_taskgraph-065491b41c6b148b.d: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/release/deps/libntc_taskgraph-065491b41c6b148b.rlib: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

/root/repo/target/release/deps/libntc_taskgraph-065491b41c6b148b.rmeta: crates/taskgraph/src/lib.rs crates/taskgraph/src/component.rs crates/taskgraph/src/flow.rs crates/taskgraph/src/generate.rs crates/taskgraph/src/graph.rs

crates/taskgraph/src/lib.rs:
crates/taskgraph/src/component.rs:
crates/taskgraph/src/flow.rs:
crates/taskgraph/src/generate.rs:
crates/taskgraph/src/graph.rs:
