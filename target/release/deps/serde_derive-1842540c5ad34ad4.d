/root/repo/target/release/deps/serde_derive-1842540c5ad34ad4.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-1842540c5ad34ad4.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
