/root/repo/target/release/deps/ntc_alloc-892f11443fab77e7.d: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/release/deps/libntc_alloc-892f11443fab77e7.rlib: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

/root/repo/target/release/deps/libntc_alloc-892f11443fab77e7.rmeta: crates/alloc/src/lib.rs crates/alloc/src/batching.rs crates/alloc/src/capabilities.rs crates/alloc/src/keepwarm.rs crates/alloc/src/memory.rs crates/alloc/src/sizing.rs

crates/alloc/src/lib.rs:
crates/alloc/src/batching.rs:
crates/alloc/src/capabilities.rs:
crates/alloc/src/keepwarm.rs:
crates/alloc/src/memory.rs:
crates/alloc/src/sizing.rs:
