/root/repo/target/release/deps/ntc_serverless-c2b0dc5d9fdbc12f.d: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

/root/repo/target/release/deps/ntc_serverless-c2b0dc5d9fdbc12f: crates/serverless/src/lib.rs crates/serverless/src/billing.rs crates/serverless/src/coldstart.rs crates/serverless/src/function.rs crates/serverless/src/platform.rs

crates/serverless/src/lib.rs:
crates/serverless/src/billing.rs:
crates/serverless/src/coldstart.rs:
crates/serverless/src/function.rs:
crates/serverless/src/platform.rs:
