/root/repo/target/release/deps/ntc_faults-8838c3705f9e681c.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/release/deps/libntc_faults-8838c3705f9e681c.rlib: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/release/deps/libntc_faults-8838c3705f9e681c.rmeta: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
