/root/repo/target/release/deps/ntc_cicd-3e3f3e17bb5be02c.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/release/deps/ntc_cicd-3e3f3e17bb5be02c: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
