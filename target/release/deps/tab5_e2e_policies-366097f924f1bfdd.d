/root/repo/target/release/deps/tab5_e2e_policies-366097f924f1bfdd.d: crates/bench/src/bin/tab5_e2e_policies.rs

/root/repo/target/release/deps/tab5_e2e_policies-366097f924f1bfdd: crates/bench/src/bin/tab5_e2e_policies.rs

crates/bench/src/bin/tab5_e2e_policies.rs:
