/root/repo/target/release/deps/ntc_bench-99f2fa99933f8512.d: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/release/deps/libntc_bench-99f2fa99933f8512.rlib: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

/root/repo/target/release/deps/libntc_bench-99f2fa99933f8512.rmeta: crates/bench/src/lib.rs crates/bench/src/dispatch.rs crates/bench/src/kernel.rs

crates/bench/src/lib.rs:
crates/bench/src/dispatch.rs:
crates/bench/src/kernel.rs:
