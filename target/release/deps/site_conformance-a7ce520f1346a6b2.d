/root/repo/target/release/deps/site_conformance-a7ce520f1346a6b2.d: crates/core/tests/site_conformance.rs

/root/repo/target/release/deps/site_conformance-a7ce520f1346a6b2: crates/core/tests/site_conformance.rs

crates/core/tests/site_conformance.rs:
