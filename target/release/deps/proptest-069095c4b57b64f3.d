/root/repo/target/release/deps/proptest-069095c4b57b64f3.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-069095c4b57b64f3.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-069095c4b57b64f3.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
