/root/repo/target/release/deps/fig4_deadline_batching-8897202243c34ae5.d: crates/bench/src/bin/fig4_deadline_batching.rs

/root/repo/target/release/deps/fig4_deadline_batching-8897202243c34ae5: crates/bench/src/bin/fig4_deadline_batching.rs

crates/bench/src/bin/fig4_deadline_batching.rs:
