/root/repo/target/release/deps/engine_scenarios-2717e348856bbfb3.d: crates/core/tests/engine_scenarios.rs

/root/repo/target/release/deps/engine_scenarios-2717e348856bbfb3: crates/core/tests/engine_scenarios.rs

crates/core/tests/engine_scenarios.rs:
