/root/repo/target/release/deps/tab2_partition_quality-d7611a245ffad5f0.d: crates/bench/src/bin/tab2_partition_quality.rs

/root/repo/target/release/deps/tab2_partition_quality-d7611a245ffad5f0: crates/bench/src/bin/tab2_partition_quality.rs

crates/bench/src/bin/tab2_partition_quality.rs:
