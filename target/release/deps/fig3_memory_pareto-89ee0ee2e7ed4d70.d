/root/repo/target/release/deps/fig3_memory_pareto-89ee0ee2e7ed4d70.d: crates/bench/src/bin/fig3_memory_pareto.rs

/root/repo/target/release/deps/fig3_memory_pareto-89ee0ee2e7ed4d70: crates/bench/src/bin/fig3_memory_pareto.rs

crates/bench/src/bin/fig3_memory_pareto.rs:
