/root/repo/target/release/deps/ntc_partition-f5ae9d711c5bc24b.d: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

/root/repo/target/release/deps/ntc_partition-f5ae9d711c5bc24b: crates/partition/src/lib.rs crates/partition/src/algorithms.rs crates/partition/src/context.rs crates/partition/src/plan.rs

crates/partition/src/lib.rs:
crates/partition/src/algorithms.rs:
crates/partition/src/context.rs:
crates/partition/src/plan.rs:
