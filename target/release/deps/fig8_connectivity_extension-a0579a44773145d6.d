/root/repo/target/release/deps/fig8_connectivity_extension-a0579a44773145d6.d: crates/bench/src/bin/fig8_connectivity_extension.rs

/root/repo/target/release/deps/fig8_connectivity_extension-a0579a44773145d6: crates/bench/src/bin/fig8_connectivity_extension.rs

crates/bench/src/bin/fig8_connectivity_extension.rs:
