/root/repo/target/release/deps/tab3_demand_estimation-41f473aed10ffd8b.d: crates/bench/src/bin/tab3_demand_estimation.rs

/root/repo/target/release/deps/tab3_demand_estimation-41f473aed10ffd8b: crates/bench/src/bin/tab3_demand_estimation.rs

crates/bench/src/bin/tab3_demand_estimation.rs:
