/root/repo/target/release/deps/fig6_ablation-1cf2f587c75e009e.d: crates/bench/src/bin/fig6_ablation.rs

/root/repo/target/release/deps/fig6_ablation-1cf2f587c75e009e: crates/bench/src/bin/fig6_ablation.rs

crates/bench/src/bin/fig6_ablation.rs:
