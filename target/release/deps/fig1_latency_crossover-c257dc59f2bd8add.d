/root/repo/target/release/deps/fig1_latency_crossover-c257dc59f2bd8add.d: crates/bench/src/bin/fig1_latency_crossover.rs

/root/repo/target/release/deps/fig1_latency_crossover-c257dc59f2bd8add: crates/bench/src/bin/fig1_latency_crossover.rs

crates/bench/src/bin/fig1_latency_crossover.rs:
