/root/repo/target/release/deps/tab3_demand_estimation-c4f80ff8a2f02dfd.d: crates/bench/src/bin/tab3_demand_estimation.rs

/root/repo/target/release/deps/tab3_demand_estimation-c4f80ff8a2f02dfd: crates/bench/src/bin/tab3_demand_estimation.rs

crates/bench/src/bin/tab3_demand_estimation.rs:
