/root/repo/target/release/deps/fig9_fault_tolerance-8f2d0f27a6cce297.d: crates/bench/src/bin/fig9_fault_tolerance.rs

/root/repo/target/release/deps/fig9_fault_tolerance-8f2d0f27a6cce297: crates/bench/src/bin/fig9_fault_tolerance.rs

crates/bench/src/bin/fig9_fault_tolerance.rs:
