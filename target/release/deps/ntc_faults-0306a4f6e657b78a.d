/root/repo/target/release/deps/ntc_faults-0306a4f6e657b78a.d: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

/root/repo/target/release/deps/ntc_faults-0306a4f6e657b78a: crates/faults/src/lib.rs crates/faults/src/classify.rs crates/faults/src/config.rs crates/faults/src/plan.rs crates/faults/src/retry.rs

crates/faults/src/lib.rs:
crates/faults/src/classify.rs:
crates/faults/src/config.rs:
crates/faults/src/plan.rs:
crates/faults/src/retry.rs:
