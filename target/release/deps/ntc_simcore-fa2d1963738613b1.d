/root/repo/target/release/deps/ntc_simcore-fa2d1963738613b1.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/libntc_simcore-fa2d1963738613b1.rlib: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/libntc_simcore-fa2d1963738613b1.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
