/root/repo/target/release/deps/fig1_latency_crossover-757961da2a6c105d.d: crates/bench/src/bin/fig1_latency_crossover.rs

/root/repo/target/release/deps/fig1_latency_crossover-757961da2a6c105d: crates/bench/src/bin/fig1_latency_crossover.rs

crates/bench/src/bin/fig1_latency_crossover.rs:
