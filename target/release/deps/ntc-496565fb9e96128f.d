/root/repo/target/release/deps/ntc-496565fb9e96128f.d: src/main.rs

/root/repo/target/release/deps/ntc-496565fb9e96128f: src/main.rs

src/main.rs:
