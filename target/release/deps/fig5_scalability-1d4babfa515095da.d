/root/repo/target/release/deps/fig5_scalability-1d4babfa515095da.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/release/deps/fig5_scalability-1d4babfa515095da: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
