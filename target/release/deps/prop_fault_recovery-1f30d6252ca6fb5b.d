/root/repo/target/release/deps/prop_fault_recovery-1f30d6252ca6fb5b.d: crates/core/tests/prop_fault_recovery.rs

/root/repo/target/release/deps/prop_fault_recovery-1f30d6252ca6fb5b: crates/core/tests/prop_fault_recovery.rs

crates/core/tests/prop_fault_recovery.rs:
