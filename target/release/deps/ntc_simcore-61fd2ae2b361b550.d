/root/repo/target/release/deps/ntc_simcore-61fd2ae2b361b550.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/ntc_simcore-61fd2ae2b361b550: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/metrics.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/timeseries.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/metrics.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/timeseries.rs:
crates/simcore/src/units.rs:
