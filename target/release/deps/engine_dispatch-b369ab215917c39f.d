/root/repo/target/release/deps/engine_dispatch-b369ab215917c39f.d: crates/bench/benches/engine_dispatch.rs

/root/repo/target/release/deps/engine_dispatch-b369ab215917c39f: crates/bench/benches/engine_dispatch.rs

crates/bench/benches/engine_dispatch.rs:
