/root/repo/target/release/deps/bench_kernel_baseline-8bd78ff82e716f66.d: crates/bench/src/bin/bench_kernel_baseline.rs

/root/repo/target/release/deps/bench_kernel_baseline-8bd78ff82e716f66: crates/bench/src/bin/bench_kernel_baseline.rs

crates/bench/src/bin/bench_kernel_baseline.rs:
