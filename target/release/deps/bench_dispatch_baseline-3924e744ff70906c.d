/root/repo/target/release/deps/bench_dispatch_baseline-3924e744ff70906c.d: crates/bench/src/bin/bench_dispatch_baseline.rs

/root/repo/target/release/deps/bench_dispatch_baseline-3924e744ff70906c: crates/bench/src/bin/bench_dispatch_baseline.rs

crates/bench/src/bin/bench_dispatch_baseline.rs:
