/root/repo/target/release/deps/fig9_fault_tolerance-4a457c3a86cb5361.d: crates/bench/src/bin/fig9_fault_tolerance.rs

/root/repo/target/release/deps/fig9_fault_tolerance-4a457c3a86cb5361: crates/bench/src/bin/fig9_fault_tolerance.rs

crates/bench/src/bin/fig9_fault_tolerance.rs:
