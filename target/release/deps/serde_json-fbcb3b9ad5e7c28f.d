/root/repo/target/release/deps/serde_json-fbcb3b9ad5e7c28f.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fbcb3b9ad5e7c28f.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fbcb3b9ad5e7c28f.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
