/root/repo/target/release/deps/fig3_memory_pareto-7342af39b7580218.d: crates/bench/src/bin/fig3_memory_pareto.rs

/root/repo/target/release/deps/fig3_memory_pareto-7342af39b7580218: crates/bench/src/bin/fig3_memory_pareto.rs

crates/bench/src/bin/fig3_memory_pareto.rs:
