/root/repo/target/release/deps/tab5_e2e_policies-4ad34223e8b4aabf.d: crates/bench/src/bin/tab5_e2e_policies.rs

/root/repo/target/release/deps/tab5_e2e_policies-4ad34223e8b4aabf: crates/bench/src/bin/tab5_e2e_policies.rs

crates/bench/src/bin/tab5_e2e_policies.rs:
