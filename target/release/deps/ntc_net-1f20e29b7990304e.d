/root/repo/target/release/deps/ntc_net-1f20e29b7990304e.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libntc_net-1f20e29b7990304e.rlib: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libntc_net-1f20e29b7990304e.rmeta: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
