/root/repo/target/release/deps/fig4_deadline_batching-1d896e80df214ec4.d: crates/bench/src/bin/fig4_deadline_batching.rs

/root/repo/target/release/deps/fig4_deadline_batching-1d896e80df214ec4: crates/bench/src/bin/fig4_deadline_batching.rs

crates/bench/src/bin/fig4_deadline_batching.rs:
