/root/repo/target/release/deps/ntc_net-e7c2cb4b7c3e65ad.d: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

/root/repo/target/release/deps/ntc_net-e7c2cb4b7c3e65ad: crates/net/src/lib.rs crates/net/src/connectivity.rs crates/net/src/link.rs crates/net/src/path.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/connectivity.rs:
crates/net/src/link.rs:
crates/net/src/path.rs:
crates/net/src/trace.rs:
