/root/repo/target/release/deps/serde-93b4635fa656b211.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-93b4635fa656b211.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-93b4635fa656b211.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
