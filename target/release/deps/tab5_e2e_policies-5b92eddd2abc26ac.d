/root/repo/target/release/deps/tab5_e2e_policies-5b92eddd2abc26ac.d: crates/bench/src/bin/tab5_e2e_policies.rs

/root/repo/target/release/deps/tab5_e2e_policies-5b92eddd2abc26ac: crates/bench/src/bin/tab5_e2e_policies.rs

crates/bench/src/bin/tab5_e2e_policies.rs:
