/root/repo/target/release/deps/ntc_cicd-2d29512a87fc1bbe.d: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/release/deps/libntc_cicd-2d29512a87fc1bbe.rlib: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

/root/repo/target/release/deps/libntc_cicd-2d29512a87fc1bbe.rmeta: crates/cicd/src/lib.rs crates/cicd/src/artifact.rs crates/cicd/src/monitor.rs crates/cicd/src/pipeline.rs

crates/cicd/src/lib.rs:
crates/cicd/src/artifact.rs:
crates/cicd/src/monitor.rs:
crates/cicd/src/pipeline.rs:
