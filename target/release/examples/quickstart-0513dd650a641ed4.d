/root/repo/target/release/examples/quickstart-0513dd650a641ed4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0513dd650a641ed4: examples/quickstart.rs

examples/quickstart.rs:
